package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// The chaos phase stands up a second server over the same scenario and
// drives it through a seeded fault plan — panics, stalls and breakdowns
// injected into engine solves — recording the availability contract the
// failure domains guarantee: fault-struck requests fail with typed errors,
// everything else completes bit-identically, and the daemon ends healthy.
// The plan derives from the experiment seed, so the phase replays.

// ChaosResult is the chaos block of BENCH_serve.json.
type ChaosResult struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	// Faulted counts requests struck directly by an injected fault (panic
	// 500s, breakdown 422s); Collateral counts any other failure — requests
	// the faults were NOT aimed at (the availability gate's numerator
	// excludes Faulted, so collateral is what erodes it).
	Faulted    int `json:"faulted"`
	Collateral int `json:"collateral"`

	// Fired fault counts, from the plan's own ledger.
	PanicsFired     int `json:"panics_fired"`
	StallsFired     int `json:"stalls_fired"`
	BreakdownsFired int `json:"breakdowns_fired"`

	// Server-side failure-domain counters.
	EnginePanics    uint64 `json:"engine_panics"`
	EngineRestarts  uint64 `json:"engine_restarts"`
	CancelledSolves uint64 `json:"cancelled_solves"`

	// AvailabilityNonFaulted = Completed / (Requests − Faulted); the
	// recorded gate is ≥ 0.99. BitIdentical records that every completed
	// response hashed identically to the fault-free reference.
	AvailabilityNonFaulted float64 `json:"availability_non_faulted"`
	BitIdentical           bool    `json:"bit_identical"`
}

// chaosWorkers is the concurrent client count of the chaos phase.
const chaosWorkers = 4

// runChaosPhase fires cfg.ChaosRequests copies of the reference payload at
// a fault-injected server and scores the availability contract against
// refHash (the fault-free pressure hash of the same payload).
func runChaosPhase(cfg ServeConfig, body []byte, refHash string) (*ChaosResult, error) {
	n := cfg.ChaosRequests
	// One fault of each kind per ~13 requests, spread over every solve the
	// run performs (each request solves cfg.Steps steps).
	nFaults := n / 13
	if nFaults < 1 {
		nFaults = 1
	}
	plan := faultinject.RandomPlan(cfg.Seed, n*cfg.Steps, nFaults, nFaults, nFaults, 20*time.Millisecond, nil)

	opts := cfg.Server
	// Isolation knobs: one engine and no batching so every request is its
	// own solve (fault ordinals line up with requests), no memo so every
	// request actually reaches an engine, no admission gate so rejections
	// cannot masquerade as fault collateral.
	opts.EnginesPerScenario = 1
	opts.BatchMax = 1
	opts.MemoCapacity = -1
	opts.QueueDepth = 2 * n
	opts.RatePerSec = 0
	opts.DefaultDeadline = 30 * time.Second
	opts.SolveHook = plan.Hook()
	srv := serve.New(opts)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	client := ts.Client()

	type reply struct {
		status int
		hash   string
		errMsg string
	}
	replies := make([]reply, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				resp, err := client.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					replies[i] = reply{status: -1, errMsg: err.Error()}
					continue
				}
				var out struct {
					PressureSHA256 string `json:"pressure_sha256"`
					Error          string `json:"error"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if decErr != nil {
					replies[i] = reply{status: resp.StatusCode, errMsg: "undecodable body: " + decErr.Error()}
					continue
				}
				replies[i] = reply{status: resp.StatusCode, hash: out.PressureSHA256, errMsg: out.Error}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &ChaosResult{Requests: n, BitIdentical: true}
	for i, r := range replies {
		switch {
		case r.status == http.StatusOK:
			res.Completed++
			if r.hash != refHash {
				res.BitIdentical = false
			}
		case strings.Contains(r.errMsg, "panicked") || strings.Contains(r.errMsg, "breakdown"):
			res.Faulted++
		default:
			res.Collateral++
			if r.status <= 0 {
				return nil, fmt.Errorf("bench: chaos request %d got no HTTP response: %s", i, r.errMsg)
			}
		}
	}
	fired := plan.Counts()
	res.PanicsFired = fired.Panics
	res.StallsFired = fired.Stalls
	res.BreakdownsFired = fired.Breakdowns
	if nonFaulted := res.Requests - res.Faulted; nonFaulted > 0 {
		res.AvailabilityNonFaulted = float64(res.Completed) / float64(nonFaulted)
	}
	st := srv.Stats()
	res.EnginePanics = st.EnginePanics
	res.EngineRestarts = st.EngineRestarts
	res.CancelledSolves = st.CancelledSolves
	return res, nil
}
