package bench

import (
	"strings"
	"testing"

	"repro/internal/umesh"
)

func smallUmeshCfg() UmeshScalingConfig {
	return UmeshScalingConfig{
		Radial: umesh.RadialOptions{
			Rings: 8, BaseSectors: 8, RefineEvery: 3,
			R0: 1, DR: 4, Dz: 4, PermMD: 200,
		},
		Apps:   2,
		Levels: []int{0, 1, 2},
	}
}

func TestUmeshScalingSweep(t *testing.T) {
	s, err := RunUmeshScaling(smallUmeshCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !s.BitIdentical {
		t.Error("sweep not bit-identical to serial cell-based")
	}
	if len(s.Points) != 3 {
		t.Fatalf("%d sweep points, want 3", len(s.Points))
	}
	if s.SerialSeconds <= 0 {
		t.Error("serial baseline has no wall-clock")
	}
	if s.MaxDegree <= 4 {
		t.Errorf("benchmark mesh max degree %d — not irregular", s.MaxDegree)
	}
	for i, p := range s.Points {
		if p.Parts != 1<<i {
			t.Errorf("point %d covers %d parts, want %d", i, p.Parts, 1<<i)
		}
		if p.Seconds <= 0 || p.McellsPerSec <= 0 {
			t.Errorf("degenerate sweep point %+v", p)
		}
		if p.Parts == 1 {
			if p.HaloWords != 0 || p.Messages != 0 {
				t.Errorf("1-part run reports communication: %+v", p)
			}
			continue
		}
		if p.HaloWords == 0 || p.Messages == 0 {
			t.Errorf("%d-part run reports no communication: %+v", p.Parts, p)
		}
		if p.HaloFraction <= 0 || p.HaloFraction >= 1 {
			t.Errorf("%d-part halo fraction %g outside (0, 1)", p.Parts, p.HaloFraction)
		}
	}
	// Halo volume grows with part count (more cut faces).
	if s.Points[2].HaloWords <= s.Points[1].HaloWords {
		t.Errorf("halo words did not grow with parts: %d (4 parts) vs %d (2 parts)",
			s.Points[2].HaloWords, s.Points[1].HaloWords)
	}

	var tbl, js strings.Builder
	if err := s.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Unstructured partitioned engine", "halo words", "bit-identical to serial: true"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serial_seconds"`, `"bit_identical": true`, `"gomaxprocs"`, `"halo_words"`, `"max_degree"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestUmeshScalingRejectsBadLevels(t *testing.T) {
	cfg := smallUmeshCfg()
	cfg.Levels = []int{20}
	if _, err := RunUmeshScaling(cfg); err == nil {
		t.Error("20 bisection levels accepted")
	}
}
