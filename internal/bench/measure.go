package bench

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/mesh"
	"repro/internal/perfmodel"
	"repro/internal/physics"
	"repro/internal/refflux"
)

// Config sizes the functional measurement runs that feed the projections.
// The counters the model consumes are per-cell and deterministic, so a
// reduced functional mesh measures them exactly; the harness also reports
// host wall-clock for the simulators themselves.
type Config struct {
	// FuncDims is the functional mesh (fabric engine + GPU simulator).
	// Needs Nx, Ny ≥ 3 so an interior PE exists.
	FuncDims mesh.Dims
	// FuncApps is the functional application count.
	FuncApps int
	// UseFabric selects the goroutine-per-PE engine (default); false uses
	// the flat engine (bit-identical, faster for big functional meshes).
	UseFabric bool
	// Workers > 1 selects the sharded parallel flat engine with that worker
	// count wherever the flat schedule runs: the dataflow measurement when
	// UseFabric is false, and the always-flat experiments (e.g. the
	// vectorization ablation) regardless of UseFabric. Results are
	// bit-identical to the serial flat engine.
	Workers int
	// Fluid overrides the default CO2 fluid when non-nil.
	Fluid *physics.Fluid
}

// DefaultConfig returns the standard functional sizing.
func DefaultConfig() Config {
	return Config{
		FuncDims:  mesh.Dims{Nx: 12, Ny: 10, Nz: 8},
		FuncApps:  2,
		UseFabric: true,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.FuncDims == (mesh.Dims{}) {
		c.FuncDims = d.FuncDims
		c.UseFabric = true
	}
	if c.FuncApps == 0 {
		c.FuncApps = d.FuncApps
	}
	return c
}

func (c Config) fluid() physics.Fluid {
	if c.Fluid != nil {
		return *c.Fluid
	}
	return physics.DefaultFluid()
}

// engineRun returns the configured functional dataflow engine: fabric,
// serial flat, or the sharded parallel flat engine. All three are
// bit-identical, so the choice only affects host wall-clock.
func (c Config) engineRun() func(*mesh.Mesh, physics.Fluid, core.Options) (*core.Result, error) {
	if c.UseFabric {
		return core.RunFabric
	}
	return c.flatRun()
}

// flatRun returns the serial or sharded flat engine per c.Workers,
// regardless of UseFabric — for experiments that need the flat schedule's
// host speed (e.g. the scalar-kernel ablation).
func (c Config) flatRun() func(*mesh.Mesh, physics.Fluid, core.Options) (*core.Result, error) {
	if c.Workers > 1 {
		return func(m *mesh.Mesh, fl physics.Fluid, o core.Options) (*core.Result, error) {
			o.Workers = c.Workers
			return core.RunFlatParallel(m, fl, o)
		}
	}
	return core.RunFlat
}

// Measurement is the outcome of the functional runs: counters for the model
// plus numerical-validation evidence.
type Measurement struct {
	Dims mesh.Dims
	Apps int

	// Dataflow side.
	Dataflow *core.Result
	// DataflowMaxRelErr is the residual's worst relative error against the
	// float64 reference (linearized density), scaled by the max residual.
	DataflowMaxRelErr float64

	// GPU side.
	RAJAStats *gpusim.KernelStats
	CUDAStats *gpusim.KernelStats
	// GPUMaxRelErr is the RAJA residual's error against the float64
	// exponential-density reference.
	GPUMaxRelErr float64
	// Occupancy is the modeled occupancy of the 16×8×8 launch.
	Occupancy gpusim.Occupancy

	// Host wall-clock of the functional simulators (not hardware numbers).
	DataflowHostTime time.Duration
	GPUHostTime      time.Duration
}

// Measure runs the functional experiments once and validates them.
func Measure(cfg Config) (*Measurement, error) {
	cfg = cfg.withDefaults()
	if cfg.FuncDims.Nx < 3 || cfg.FuncDims.Ny < 3 {
		return nil, fmt.Errorf("bench: functional mesh %v needs Nx,Ny ≥ 3 for an interior PE", cfg.FuncDims)
	}
	m, err := mesh.BuildDefault(cfg.FuncDims)
	if err != nil {
		return nil, err
	}
	fl := cfg.fluid()

	meas := &Measurement{Dims: cfg.FuncDims, Apps: cfg.FuncApps}

	// Dataflow functional run.
	opts := core.DefaultOptions(cfg.FuncApps)
	meas.Dataflow, err = cfg.engineRun()(m, fl, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: dataflow run: %w", err)
	}
	meas.DataflowHostTime = meas.Dataflow.Elapsed
	if meas.Dataflow.Interior == nil {
		return nil, fmt.Errorf("bench: no interior PE measured on %v", cfg.FuncDims)
	}
	// Validate against the float64 reference with the same density model.
	p := m.Pressure32()
	ref, err := refflux.Run(m, fl.WithModel(physics.DensityLinear), p, cfg.FuncApps, refflux.Options{})
	if err != nil {
		return nil, err
	}
	meas.DataflowMaxRelErr = maxRelErr(meas.Dataflow.Residual, ref)

	// GPU functional runs (fresh meshes: pressure is perturbed in place).
	gpuStart := time.Now()
	rajaRes, rajaStats, err := runGPU(cfg, fl, perfmodel.VariantRAJA)
	if err != nil {
		return nil, err
	}
	_, cudaStats, err := runGPU(cfg, fl, perfmodel.VariantCUDA)
	if err != nil {
		return nil, err
	}
	meas.GPUHostTime = time.Since(gpuStart)
	meas.RAJAStats, meas.CUDAStats = rajaStats, cudaStats
	m2, err := mesh.BuildDefault(cfg.FuncDims)
	if err != nil {
		return nil, err
	}
	p2 := m2.Pressure32()
	refExp, err := refflux.Run(m2, fl, p2, cfg.FuncApps, refflux.Options{})
	if err != nil {
		return nil, err
	}
	meas.GPUMaxRelErr = maxRelErr(rajaRes, refExp)
	meas.Occupancy = gpusim.NewDevice(gpusim.A100()).OccupancyFor(gpusim.Dim3{X: 16, Y: 8, Z: 8})
	return meas, nil
}

func runGPU(cfg Config, fl physics.Fluid, v perfmodel.Variant) ([]float32, *gpusim.KernelStats, error) {
	m, err := mesh.BuildDefault(cfg.FuncDims)
	if err != nil {
		return nil, nil, err
	}
	dev := gpusim.NewDevice(gpusim.A100())
	fd, err := kernels.Upload(dev, m, fl)
	if err != nil {
		return nil, nil, err
	}
	var st *gpusim.KernelStats
	if v == perfmodel.VariantCUDA {
		st, err = fd.RunCUDA(cfg.FuncApps)
	} else {
		st, err = fd.RunRAJA(cfg.FuncApps)
	}
	if err != nil {
		return nil, nil, err
	}
	return fd.Residual(), st, nil
}

func maxRelErr(got []float32, want []float64) float64 {
	scale := 0.0
	for _, w := range want {
		if a := math.Abs(w); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range got {
		if d := math.Abs(float64(got[i])-want[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// cs2InputsAt assembles the model inputs for a mesh size from the measured
// per-cell counters.
func (meas *Measurement) cs2InputsAt(nx, ny, nz, apps int) perfmodel.CS2Inputs {
	pc := meas.Dataflow.Interior
	return perfmodel.CS2Inputs{
		Nx: nx, Ny: ny, Nz: nz, Apps: apps,
		MemAccessesPerCell: pc.MemAccesses,
		FabricWordsPerCell: pc.FabricLoads,
		FlopsPerCell:       pc.Flops,
	}
}

// a100InputsAt assembles the GPU model inputs for a cell count.
func (meas *Measurement) a100InputsAt(cells, apps int, v perfmodel.Variant) perfmodel.A100Inputs {
	st := meas.RAJAStats
	if v == perfmodel.VariantCUDA {
		st = meas.CUDAStats
	}
	funcCells := meas.Dims.Cells()
	den := float64(funcCells) * float64(meas.Apps)
	return perfmodel.A100Inputs{
		Cells: cells, Apps: apps,
		WordBytesPerCell: float64(st.Bytes()) / den,
		FlopsPerCell:     float64(st.Flops) / den,
		Variant:          v,
	}
}
