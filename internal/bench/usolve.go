package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/physics"
	"repro/internal/solver"
	"repro/internal/umesh"
)

// This file is the partitioned implicit-solve scaling experiment: a transient
// backward-Euler run (one preconditioned CG solve per step, every operator
// application through the partitioned unstructured engine) swept over RCB
// part counts and checked bit-identical — residual histories, iteration
// counts, final state — against the serial UHostOperator reference. Where the
// umesh experiment measures raw residual applications, this one measures the
// first real solver scenario on the partitioned runtime: many part-resident
// engine applications per time step (one scatter and one gather per solve,
// fused exchange-overlapped phases in between), which is where the 0-alloc
// exchange and the canonical deterministic reductions pay off. The JSON
// report (BENCH_usolve.json) carries a per-phase exchange/compute/reduce
// breakdown per point and is the trajectory anchor for the implicit path.

// UsolveConfig sizes the partitioned implicit-solve sweep.
type UsolveConfig struct {
	// Radial sizes the benchmark mesh (default: the umesh experiment's
	// 64×64 refined radial grid ≈ 15k cells).
	Radial umesh.RadialOptions
	// Dt and Steps shape the transient run (default: 3 one-hour steps).
	Dt    float64
	Steps int
	// Tol is the CG tolerance (default 1e-8).
	Tol float64
	// Levels lists the RCB bisection depths to sweep (default 0–3, i.e.
	// 1, 2, 4 and 8 parts).
	Levels []int
	// Workers sizes the engine worker pool (default 0 = NumCPU; the pool
	// clamps to the part count).
	Workers int
	// Fluid overrides the default CO2 fluid when non-nil.
	Fluid *physics.Fluid
	// Preconds lists the preconditioner rungs to sweep (default: the whole
	// ladder — jacobi, ssor, chebyshev, amg). Each rung runs the full
	// part-count sweep with its own serial baseline and bit-identity check.
	Preconds []string
}

func (c UsolveConfig) withDefaults() UsolveConfig {
	if c.Radial == (umesh.RadialOptions{}) {
		c.Radial = umesh.RadialOptions{
			Rings: 64, BaseSectors: 64, RefineEvery: 16,
			R0: 1, DR: 4, Dz: 4, PermMD: 200,
		}
	}
	if c.Dt == 0 {
		c.Dt = 3600
	}
	if c.Steps == 0 {
		c.Steps = 3
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if len(c.Levels) == 0 {
		c.Levels = []int{0, 1, 2, 3}
	}
	if len(c.Preconds) == 0 {
		for _, k := range solver.PrecondKinds() {
			c.Preconds = append(c.Preconds, string(k))
		}
	}
	return c
}

// UsolvePoint is one part count's measurement.
type UsolvePoint struct {
	Parts   int `json:"parts"`
	Workers int `json:"workers"`
	// Seconds is the host wall-clock of the whole transient run (system
	// setup included — a solve pays its own operator construction).
	Seconds float64 `json:"seconds"`
	// CompileSeconds is the plan-compilation share of Seconds: system
	// assembly, partitioned-operator construction (halo plans, CSR
	// interleave, phase programs) and preconditioner setup — the cost a
	// resident engine pays once and the serving layer's scenario cache
	// amortizes across requests.
	CompileSeconds float64 `json:"compile_seconds"`
	// Speedup is serial seconds / this point's seconds.
	Speedup float64 `json:"speedup"`
	// Iterations is the total CG iteration count over all steps.
	Iterations int `json:"iterations"`
	// OperatorApplications counts partitioned engine applications driven by
	// the Krylov iterations.
	OperatorApplications int `json:"operator_applications"`
	// HaloWords and Messages are the run's total halo traffic (float64
	// payloads counted as two 32-bit words each; one message per coalesced
	// (src,dst) neighbor transfer).
	HaloWords uint64 `json:"halo_words"`
	Messages  uint64 `json:"messages"`
	// Barriers and Dispatches count the run's synchronization: plan
	// executions on the worker pool and barrier crossings inside them
	// (0 barriers when the pool runs inline at workers=1).
	Barriers   uint64 `json:"barriers"`
	Dispatches uint64 `json:"dispatches"`
	// Scatters and Gathers count whole-vector global transfers — the
	// part-resident guarantee in its observable form: one of each per time
	// step.
	Scatters int `json:"scatters"`
	Gathers  int `json:"gathers"`
	// Phase is the per-phase wall-clock breakdown of the partitioned solve:
	// exchange (fused pack+send+interior overlap window, plus the per-solve
	// scatter and gather), compute (receive+frontier), reduce (fused
	// axpy/dot/preconditioner phases).
	Phase umesh.PhaseSeconds `json:"phase_seconds"`
}

// UsolveRung is one preconditioner's full part-count sweep: its own serial
// baseline, its partitioned points, and its iteration count relative to the
// Jacobi rung — the ladder's headline number.
type UsolveRung struct {
	// Precond names the rung (jacobi, ssor, chebyshev, amg).
	Precond string `json:"precond"`
	// SerialSeconds is the rung's serial reference wall-clock; the rung's
	// speedups are relative to it. SerialCompileSeconds is its
	// plan-compilation share (system assembly plus preconditioner setup).
	SerialSeconds        float64 `json:"serial_seconds"`
	SerialCompileSeconds float64 `json:"serial_compile_seconds"`
	// SerialIterations is the rung's total CG iteration count over all
	// steps; every partitioned point must match it exactly.
	SerialIterations int `json:"serial_iterations"`
	// IterationFactor is the Jacobi rung's serial iteration count divided by
	// this rung's — how many CG iterations the rung buys (1.0 for Jacobi
	// itself; 0 when Jacobi was not in the sweep).
	IterationFactor float64 `json:"iteration_factor_vs_jacobi"`
	// Points are the rung's partitioned measurements, one per part count.
	Points []UsolvePoint `json:"points"`
	// BitIdentical records that every partitioned run of this rung matched
	// its serial reference exactly.
	BitIdentical bool `json:"bit_identical"`
}

// UsolveScaling is the sweep outcome. It serializes to the BENCH_usolve.json
// baseline future PRs compare against. The top-level serial/points fields
// mirror the Jacobi rung (the pre-ladder format, kept so older tooling and
// earlier baselines stay comparable); Rungs carries the full ladder.
type UsolveScaling struct {
	Cells      int     `json:"cells"`
	Faces      int     `json:"faces"`
	MaxDegree  int     `json:"max_degree"`
	Steps      int     `json:"steps"`
	DtSeconds  float64 `json:"dt_seconds"`
	Tol        float64 `json:"tol"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`

	// SerialSeconds is the serial UHostOperator transient wall-clock the
	// speedups are relative to (the Jacobi rung's baseline).
	SerialSeconds float64 `json:"serial_seconds"`
	// SerialIterations is the serial run's total CG iteration count; every
	// partitioned point must match it exactly.
	SerialIterations int           `json:"serial_iterations"`
	Points           []UsolvePoint `json:"points"`

	// Rungs is the preconditioner ladder: one full sweep per rung, in the
	// order configured (default jacobi → ssor → chebyshev → amg).
	Rungs []UsolveRung `json:"rungs"`

	// BitIdentical records that every partitioned run of every rung matched
	// its serial reference exactly (residual histories, iteration counts,
	// final state); a divergence aborts the sweep.
	BitIdentical bool `json:"bit_identical"`
}

// usolveOptions builds the shared transient options of a sweep.
func usolveOptions(u *umesh.Mesh, cfg UsolveConfig) umesh.TransientOptions {
	opts := umesh.TransientOptions{
		Dt:    cfg.Dt,
		Steps: cfg.Steps,
		Wells: []umesh.Well{
			{Cell: u.WellIndex(), Rate: 2.0},
			{Cell: u.NumCells - 1, Rate: -2.0},
		},
		Workers: cfg.Workers,
	}
	opts.Solver.Tol = cfg.Tol
	return opts
}

// RunUsolveScaling measures the partitioned implicit transient solve across
// part counts against the serial UHostOperator baseline, once per
// preconditioner rung.
func RunUsolveScaling(cfg UsolveConfig) (*UsolveScaling, error) {
	cfg = cfg.withDefaults()
	u, err := umesh.NewRadialMesh(cfg.Radial)
	if err != nil {
		return nil, err
	}
	fl := physics.DefaultFluid()
	if cfg.Fluid != nil {
		fl = *cfg.Fluid
	}
	for _, name := range cfg.Preconds {
		if name != string(solver.PrecondJacobi) && name != string(solver.PrecondSSOR) &&
			name != string(solver.PrecondChebyshev) && name != string(solver.PrecondAMG) {
			return nil, fmt.Errorf("bench: unknown preconditioner %q (want jacobi, ssor, chebyshev or amg)", name)
		}
	}
	parts := make([]*umesh.Partition, len(cfg.Levels))
	for i, levels := range cfg.Levels {
		if parts[i], err = umesh.RCB(u, levels); err != nil {
			return nil, fmt.Errorf("bench: RCB levels %d: %w", levels, err)
		}
	}

	out := &UsolveScaling{
		Cells:        u.NumCells,
		Faces:        len(u.Faces),
		MaxDegree:    u.MaxDegree(),
		Steps:        cfg.Steps,
		DtSeconds:    cfg.Dt,
		Tol:          cfg.Tol,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		BitIdentical: true,
	}
	for _, name := range cfg.Preconds {
		opts := usolveOptions(u, cfg)
		opts.Solver.PrecondKind = solver.PrecondKind(name)

		// Warm-up then measured serial baseline (the scaling methodology: no
		// run pays first-touch costs for the ones after it).
		if _, err := umesh.RunTransientPartitioned(u, nil, fl, opts); err != nil {
			return nil, fmt.Errorf("bench: usolve %s warm-up: %w", name, err)
		}
		runtime.GC()
		// The measured run goes through TransientSolver explicitly (the same
		// cycle RunTransientPartitioned performs) so the plan-compile share
		// of the wall-clock is reported on its own.
		serialStart := time.Now()
		serialSolver, err := umesh.NewTransientSolver(u, nil, fl, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: usolve %s serial baseline: %w", name, err)
		}
		serial, err := serialSolver.Solve(opts)
		serialSolver.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: usolve %s serial baseline: %w", name, err)
		}
		rung := UsolveRung{
			Precond:              name,
			SerialSeconds:        time.Since(serialStart).Seconds(),
			SerialCompileSeconds: serialSolver.CompileSeconds,
			BitIdentical:         true,
		}
		for _, st := range serial.Steps {
			rung.SerialIterations += st.Iterations
		}
		for _, part := range parts {
			// Warm-up run, GC, measured run.
			if _, err := umesh.RunTransientPartitioned(u, part, fl, opts); err != nil {
				return nil, fmt.Errorf("bench: %s %d parts warm-up: %w", name, part.NumParts, err)
			}
			runtime.GC()
			start := time.Now()
			ts, err := umesh.NewTransientSolver(u, part, fl, opts)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %d parts: %w", name, part.NumParts, err)
			}
			res, err := ts.Solve(opts)
			ts.Close()
			if err != nil {
				return nil, fmt.Errorf("bench: %s %d parts: %w", name, part.NumParts, err)
			}
			sec := time.Since(start).Seconds()
			if err := usolveCompare(serial, res); err != nil {
				return nil, fmt.Errorf("bench: %s %d parts: %w", name, part.NumParts, err)
			}
			pt := UsolvePoint{
				Parts:                part.NumParts,
				Seconds:              sec,
				CompileSeconds:       ts.CompileSeconds,
				OperatorApplications: res.OperatorApplications,
				HaloWords:            res.Comm.HaloWords,
				Messages:             res.Comm.Messages,
				Barriers:             res.Comm.Barriers,
				Dispatches:           res.Comm.Dispatches,
				Scatters:             res.Scatters,
				Gathers:              res.Gathers,
				Phase:                res.Phase,
			}
			pt.Workers = cfg.Workers
			if pt.Workers == 0 {
				pt.Workers = runtime.NumCPU()
			}
			if pt.Workers > part.NumParts {
				pt.Workers = part.NumParts
			}
			for _, st := range res.Steps {
				pt.Iterations += st.Iterations
			}
			if sec > 0 {
				pt.Speedup = rung.SerialSeconds / sec
			}
			rung.Points = append(rung.Points, pt)
		}
		out.Rungs = append(out.Rungs, rung)
	}

	// IterationFactor is relative to the Jacobi rung; the legacy top-level
	// fields mirror it (or the first rung when Jacobi was not swept).
	mirror := &out.Rungs[0]
	for i := range out.Rungs {
		if out.Rungs[i].Precond == string(solver.PrecondJacobi) {
			mirror = &out.Rungs[i]
		}
	}
	if mirror.Precond == string(solver.PrecondJacobi) {
		for i := range out.Rungs {
			if its := out.Rungs[i].SerialIterations; its > 0 {
				out.Rungs[i].IterationFactor = float64(mirror.SerialIterations) / float64(its)
			}
		}
	}
	out.SerialSeconds = mirror.SerialSeconds
	out.SerialIterations = mirror.SerialIterations
	out.Points = mirror.Points
	return out, nil
}

// usolveCompare asserts a partitioned run equals the serial reference
// bit-for-bit: per-step residual history, iteration count, and final state.
func usolveCompare(serial, got *umesh.TransientResult) error {
	if len(got.Steps) != len(serial.Steps) {
		return fmt.Errorf("ran %d steps, serial ran %d", len(got.Steps), len(serial.Steps))
	}
	for s := range serial.Steps {
		ws, gs := serial.Steps[s], got.Steps[s]
		if gs.Iterations != ws.Iterations {
			return fmt.Errorf("step %d: %d iterations, serial took %d", s, gs.Iterations, ws.Iterations)
		}
		for k := range ws.History {
			if gs.History[k] != ws.History[k] {
				return fmt.Errorf("step %d: residual history[%d] diverged from serial (%g vs %g)",
					s, k, gs.History[k], ws.History[k])
			}
		}
	}
	for i := range serial.Pressure {
		if got.Pressure[i] != serial.Pressure[i] {
			return fmt.Errorf("final pressure[%d] diverged from serial (%g vs %g)",
				i, got.Pressure[i], serial.Pressure[i])
		}
	}
	return nil
}

// WriteJSON writes the sweep as indented JSON — the BENCH_usolve.json
// baseline format.
func (s *UsolveScaling) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render writes the sweep as tables: the ladder summary, then each rung's
// per-part-count points.
func (s *UsolveScaling) Render(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "Partitioned implicit solve — radial mesh, %d cells, %d faces (max degree %d), %d×%.0fs backward-Euler steps, CG tol %.0e\n",
		s.Cells, s.Faces, s.MaxDegree, s.Steps, s.DtSeconds, s.Tol)
	fmt.Fprintf(tw, "host: %s, NumCPU %d, GOMAXPROCS %d\n", s.GoVersion, s.NumCPU, s.GOMAXPROCS)
	fmt.Fprintln(tw, "\npreconditioner ladder (serial baselines):")
	fmt.Fprintln(tw, "precond\tCG its\tits ÷ jacobi\tserial [s]")
	for _, r := range s.Rungs {
		factor := "-"
		if r.IterationFactor > 0 {
			factor = fmt.Sprintf("%.1fx", r.IterationFactor)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%.4f\n", r.Precond, r.SerialIterations, factor, r.SerialSeconds)
	}
	for _, r := range s.Rungs {
		fmt.Fprintf(tw, "\n%s — serial reference: %.4f s (compile %.4f s), %d CG iterations\n",
			r.Precond, r.SerialSeconds, r.SerialCompileSeconds, r.SerialIterations)
		fmt.Fprintln(tw, "parts\tworkers\ttime [s]\tcompile [s]\tspeedup\tCG its\tapplications\thalo words\tmsgs\tbarriers\tdispatches\texch [s]\tcomp [s]\tred [s]")
		for _, p := range r.Points {
			fmt.Fprintf(tw, "%d\t%d\t%.4f\t%.4f\t%.2fx\t%d\t%d\t%d\t%d\t%d\t%d\t%.4f\t%.4f\t%.4f\n",
				p.Parts, p.Workers, p.Seconds, p.CompileSeconds, p.Speedup, p.Iterations,
				p.OperatorApplications, p.HaloWords, p.Messages,
				p.Barriers, p.Dispatches,
				p.Phase.Exchange, p.Phase.Compute, p.Phase.Reduce)
		}
	}
	fmt.Fprintf(tw, "\nbit-identical to serial (histories, iterations, final state): %v\n", s.BitIdentical)
	if s.GOMAXPROCS == 1 {
		fmt.Fprintln(tw, "note: single-core host — wall-clock speedup is impossible here; the sweep still verifies the partitioned implicit path end to end")
	}
	return tw.Flush()
}
