package bench

import (
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestDefaultWorkerSweep(t *testing.T) {
	cases := []struct {
		numCPU int
		want   []int
	}{
		{1, []int{1, 2, 4}},    // small host still reaches 4 workers
		{4, []int{1, 2, 4}},    //
		{6, []int{1, 2, 4, 6}}, // non-power-of-two CPU count appended
		{8, []int{1, 2, 4, 8}}, //
		{12, []int{1, 2, 4, 8, 12}},
	}
	for _, c := range cases {
		got := DefaultWorkerSweep(c.numCPU)
		if len(got) != len(c.want) {
			t.Errorf("DefaultWorkerSweep(%d) = %v, want %v", c.numCPU, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("DefaultWorkerSweep(%d) = %v, want %v", c.numCPU, got, c.want)
				break
			}
		}
	}
}

func TestStrongScalingSweep(t *testing.T) {
	s, err := RunStrongScaling(ScalingConfig{
		Dims:    mesh.Dims{Nx: 16, Ny: 12, Nz: 3},
		Apps:    2,
		Workers: []int{1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.BitIdentical {
		t.Error("sweep not bit-identical to serial flat")
	}
	if len(s.Points) != 3 {
		t.Fatalf("%d sweep points, want 3", len(s.Points))
	}
	if s.SerialSeconds <= 0 {
		t.Error("serial baseline has no wall-clock")
	}
	for _, p := range s.Points {
		if p.Seconds <= 0 || p.Speedup <= 0 || p.McellsPerSec <= 0 {
			t.Errorf("degenerate sweep point %+v", p)
		}
	}
	if s.MaxSpeedup <= 0 || s.BestWorkers == 0 {
		t.Errorf("best point not recorded: %+v", s)
	}

	var tbl, js strings.Builder
	if err := s.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Strong scaling", "workers", "speedup", "bit-identical to serial: true"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serial_seconds"`, `"bit_identical": true`, `"gomaxprocs"`, `"points"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestStrongScalingRejectsBadSweep(t *testing.T) {
	_, err := RunStrongScaling(ScalingConfig{
		Dims:    mesh.Dims{Nx: 8, Ny: 6, Nz: 2},
		Apps:    1,
		Workers: []int{0},
	})
	if err == nil {
		t.Error("worker count 0 accepted in sweep")
	}
}

func TestMeasureWithParallelEngine(t *testing.T) {
	// The measurement harness must produce identical counters through the
	// sharded engine (Config.Workers plumbing).
	cfg := smallCfg()
	cfg.UseFabric = false
	serial, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	par, err := Measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Dataflow.Counters != par.Dataflow.Counters {
		t.Error("parallel measurement counters differ from serial flat")
	}
	if par.DataflowMaxRelErr > 2e-3 {
		t.Errorf("parallel measurement rel err %g too large", par.DataflowMaxRelErr)
	}
}

func TestWorkerSweepUpTo(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{3, []int{1, 2, 3}},
		{8, []int{1, 2, 4, 8}},
		{6, []int{1, 2, 4, 6}},
	}
	for _, c := range cases {
		got := WorkerSweepUpTo(c.max)
		if len(got) != len(c.want) {
			t.Errorf("WorkerSweepUpTo(%d) = %v, want %v", c.max, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("WorkerSweepUpTo(%d) = %v, want %v", c.max, got, c.want)
				break
			}
		}
	}
}
