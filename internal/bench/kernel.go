package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dsd"
	"repro/internal/mesh"
	"repro/internal/physics"
)

// This file is the fast-path kernel experiment: the host simulator's hot
// layers — the dsd vector ops and the whole flat engine — measured on both
// the stride-1 fast path and the legacy strided loops, with the bit-identity
// of the two paths verified in the same run. The JSON report (BENCH_kernel.json) is the
// single-core trajectory anchor the ROADMAP's "fast as the hardware allows"
// goal is tracked against; the strong-scaling baseline builds on top of it.

// KernelConfig sizes the kernel benchmark.
type KernelConfig struct {
	// Dims is the engine workload (default 128×128×4 — the strong-scaling
	// mesh, so the two baselines share a shape).
	Dims mesh.Dims
	// Apps is the application count per engine run (default 3).
	Apps int
	// VecLen is the dsd op vector length (default 246, the paper's deepest
	// column).
	VecLen int
	// OpIters is the op-loop iteration count per measurement (default 2e5).
	OpIters int
}

func (c KernelConfig) withDefaults() KernelConfig {
	if c.Dims == (mesh.Dims{}) {
		c.Dims = mesh.Dims{Nx: 128, Ny: 128, Nz: 4}
	}
	if c.Apps == 0 {
		c.Apps = 3
	}
	if c.VecLen == 0 {
		c.VecLen = 246
	}
	if c.OpIters == 0 {
		c.OpIters = 200_000
	}
	return c
}

// KernelOpRate is one dsd op's throughput on both op paths.
type KernelOpRate struct {
	Op                  string  `json:"op"`
	FastMElemsPerSec    float64 `json:"fast_melems_per_sec"`
	StridedMElemsPerSec float64 `json:"strided_melems_per_sec"`
	// Speedup is fast over strided.
	Speedup float64 `json:"speedup"`
}

// KernelBench is the kernel benchmark outcome. It serializes to the
// BENCH_kernel.json baseline future PRs compare against.
type KernelBench struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	VecLen int            `json:"vec_len"`
	Ops    []KernelOpRate `json:"ops"`

	Dims mesh.Dims `json:"dims"`
	Apps int       `json:"apps"`
	// Engine seconds are serial RunFlat wall-clock (application loop only)
	// on the two op paths; Mcells the corresponding host throughput.
	EngineFastSeconds    float64 `json:"engine_fast_seconds"`
	EngineStridedSeconds float64 `json:"engine_strided_seconds"`
	EngineFastMcells     float64 `json:"engine_fast_mcells_per_sec"`
	EngineStridedMcells  float64 `json:"engine_strided_mcells_per_sec"`
	EngineSpeedup        float64 `json:"engine_speedup"`

	// BitIdentical records that the two paths' residuals and counters
	// matched exactly; a divergence aborts the run with an error.
	BitIdentical bool `json:"bit_identical"`
}

// opCase is one measured dsd op.
type opCase struct {
	name string
	run  func(e *dsd.Engine, dst, x, y, z dsd.Desc, recv []float32)
}

var kernelOps = []opCase{
	{"MulVV", func(e *dsd.Engine, dst, x, y, _ dsd.Desc, _ []float32) { e.MulVV(dst, x, y) }},
	{"AddVV", func(e *dsd.Engine, dst, x, y, _ dsd.Desc, _ []float32) { e.AddVV(dst, x, y) }},
	{"SubVV", func(e *dsd.Engine, dst, x, y, _ dsd.Desc, _ []float32) { e.SubVV(dst, x, y) }},
	{"FmaVVV", func(e *dsd.Engine, dst, x, y, z dsd.Desc, _ []float32) { e.FmaVVV(dst, x, y, z) }},
	{"SelGtV", func(e *dsd.Engine, dst, x, y, z dsd.Desc, _ []float32) { e.SelGtV(dst, z, x, y) }},
	{"AccV", func(e *dsd.Engine, dst, x, _, _ dsd.Desc, _ []float32) { e.AccV(dst, x) }},
	{"MovRecv", func(e *dsd.Engine, dst, _, _, _ dsd.Desc, recv []float32) { e.MovRecv(dst, recv) }},
}

// measureOp times iters issues of one op at vector length n and returns the
// element throughput in Melem/s.
func measureOp(op opCase, n, iters int) (float64, error) {
	m, err := dsd.NewMemory(8 * n)
	if err != nil {
		return 0, err
	}
	e := dsd.NewEngine(m)
	alloc := func() (dsd.Desc, error) { return m.Alloc(n) }
	dst, err := alloc()
	if err != nil {
		return 0, err
	}
	x, err := alloc()
	if err != nil {
		return 0, err
	}
	y, err := alloc()
	if err != nil {
		return 0, err
	}
	z, err := alloc()
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		m.StoreHost(x, i, float32(i%17)+0.5)
		m.StoreHost(y, i, float32(i%13)-6)
		m.StoreHost(z, i, float32(i%7)-3)
	}
	recv := make([]float32, n)
	// Warm-up pass so neither path pays first-touch costs.
	for i := 0; i < 64; i++ {
		op.run(e, dst, x, y, z, recv)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		op.run(e, dst, x, y, z, recv)
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0, nil
	}
	return float64(n) * float64(iters) / sec / 1e6, nil
}

// RunKernelBench measures the dsd ops and the serial flat engine on both op
// paths and verifies the paths bit-identical.
func RunKernelBench(cfg KernelConfig) (*KernelBench, error) {
	cfg = cfg.withDefaults()
	out := &KernelBench{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		VecLen:     cfg.VecLen,
		Dims:       cfg.Dims,
		Apps:       cfg.Apps,
	}

	for _, op := range kernelOps {
		fastRate, err := withFastPath(true, func() (float64, error) {
			return measureOp(op, cfg.VecLen, cfg.OpIters)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: op %s (fast): %w", op.name, err)
		}
		strRate, err := withFastPath(false, func() (float64, error) {
			return measureOp(op, cfg.VecLen, cfg.OpIters)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: op %s (strided): %w", op.name, err)
		}
		rate := KernelOpRate{Op: op.name, FastMElemsPerSec: fastRate, StridedMElemsPerSec: strRate}
		if strRate > 0 {
			rate.Speedup = fastRate / strRate
		}
		out.Ops = append(out.Ops, rate)
	}

	m, err := mesh.BuildDefault(cfg.Dims)
	if err != nil {
		return nil, err
	}
	fl := physics.DefaultFluid()
	opts := core.DefaultOptions(cfg.Apps)
	opts.MemWords = core.WordsPerZ(opts.BufferReuse)*cfg.Dims.Nz + core.FixedWords

	engineRun := func(fast bool) (*core.Result, error) {
		return withFastPath(fast, func() (*core.Result, error) {
			// Warm-up run, then a GC so both paths start with the same
			// heap state (mirrors the strong-scaling methodology).
			if _, err := core.RunFlat(m, fl, opts); err != nil {
				return nil, err
			}
			runtime.GC()
			return core.RunFlat(m, fl, opts)
		})
	}
	fast, err := engineRun(true)
	if err != nil {
		return nil, fmt.Errorf("bench: engine (fast): %w", err)
	}
	strided, err := engineRun(false)
	if err != nil {
		return nil, fmt.Errorf("bench: engine (strided): %w", err)
	}
	for i := range fast.Residual {
		if fast.Residual[i] != strided.Residual[i] {
			return nil, fmt.Errorf("bench: fast path residual[%d] diverged from strided (%g vs %g)",
				i, fast.Residual[i], strided.Residual[i])
		}
	}
	if fast.Counters != strided.Counters {
		return nil, fmt.Errorf("bench: fast path counters diverged from strided")
	}
	out.BitIdentical = true
	out.EngineFastSeconds = fast.Elapsed.Seconds()
	out.EngineStridedSeconds = strided.Elapsed.Seconds()
	out.EngineFastMcells = fast.HostThroughput() / 1e6
	out.EngineStridedMcells = strided.HostThroughput() / 1e6
	if out.EngineFastSeconds > 0 {
		out.EngineSpeedup = out.EngineStridedSeconds / out.EngineFastSeconds
	}
	return out, nil
}

// withFastPath runs fn with the dsd fast path forced to the given setting.
func withFastPath[T any](on bool, fn func() (T, error)) (T, error) {
	prev := dsd.SetFastPath(on)
	defer dsd.SetFastPath(prev)
	return fn()
}

// WriteJSON writes the benchmark as indented JSON — the BENCH_kernel.json
// baseline format.
func (k *KernelBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(k)
}

// Render writes the benchmark as a table.
func (k *KernelBench) Render(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Kernel fast path — dsd ops and serial flat engine, stride-1 vs strided")
	fmt.Fprintf(tw, "host: %s, NumCPU %d, GOMAXPROCS %d\n", k.GoVersion, k.NumCPU, k.GOMAXPROCS)
	fmt.Fprintf(tw, "\nvector ops at length %d:\n", k.VecLen)
	fmt.Fprintln(tw, "op\tfast [Melem/s]\tstrided [Melem/s]\tspeedup")
	for _, r := range k.Ops {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.2fx\n", r.Op, r.FastMElemsPerSec, r.StridedMElemsPerSec, r.Speedup)
	}
	fmt.Fprintf(tw, "\nserial flat engine, %dx%dx%d mesh, %d applications:\n",
		k.Dims.Nx, k.Dims.Ny, k.Dims.Nz, k.Apps)
	fmt.Fprintf(tw, "fast path\t%.4f s\t%.2f Mcell/s\n", k.EngineFastSeconds, k.EngineFastMcells)
	fmt.Fprintf(tw, "strided\t%.4f s\t%.2f Mcell/s\n", k.EngineStridedSeconds, k.EngineStridedMcells)
	fmt.Fprintf(tw, "speedup\t%.2fx\tbit-identical: %v\n", k.EngineSpeedup, k.BitIdentical)
	return tw.Flush()
}
