package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func TestRunKernelBenchSmall(t *testing.T) {
	k, err := RunKernelBench(KernelConfig{
		Dims:    mesh.Dims{Nx: 6, Ny: 5, Nz: 3},
		Apps:    1,
		VecLen:  16,
		OpIters: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !k.BitIdentical {
		t.Fatal("fast path diverged from strided")
	}
	if len(k.Ops) != len(kernelOps) {
		t.Fatalf("measured %d ops, want %d", len(k.Ops), len(kernelOps))
	}
	for _, op := range k.Ops {
		if op.FastMElemsPerSec <= 0 || op.StridedMElemsPerSec <= 0 {
			t.Errorf("op %s has non-positive rate: %+v", op.Op, op)
		}
	}
	if k.EngineFastSeconds <= 0 || k.EngineStridedSeconds <= 0 {
		t.Error("engine timings must be positive")
	}

	var buf bytes.Buffer
	if err := k.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelBench
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.VecLen != 16 || !back.BitIdentical {
		t.Errorf("round-tripped baseline wrong: %+v", back)
	}

	var tbl strings.Builder
	if err := k.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Kernel fast path", "MulVV", "bit-identical: true"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q:\n%s", want, tbl.String())
		}
	}
}
