package bench

import (
	"strings"
	"testing"

	"repro/internal/umesh"
)

func smallUsolveCfg() UsolveConfig {
	return UsolveConfig{
		Radial: umesh.RadialOptions{
			Rings: 8, BaseSectors: 8, RefineEvery: 3,
			R0: 1, DR: 4, Dz: 4, PermMD: 200,
		},
		Steps:  2,
		Levels: []int{0, 1, 2},
	}
}

func TestUsolveScalingSweep(t *testing.T) {
	s, err := RunUsolveScaling(smallUsolveCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !s.BitIdentical {
		t.Error("sweep not bit-identical to serial reference")
	}
	// The default sweep runs the whole ladder, jacobi first; the legacy
	// top-level fields mirror the jacobi rung.
	if len(s.Rungs) != 4 {
		t.Fatalf("%d rungs, want the full 4-rung ladder", len(s.Rungs))
	}
	wantOrder := []string{"jacobi", "ssor", "chebyshev", "amg"}
	for i, r := range s.Rungs {
		if r.Precond != wantOrder[i] {
			t.Errorf("rung %d is %q, want %q", i, r.Precond, wantOrder[i])
		}
	}
	if s.SerialSeconds != s.Rungs[0].SerialSeconds || s.SerialIterations != s.Rungs[0].SerialIterations {
		t.Error("top-level serial fields do not mirror the jacobi rung")
	}
	if len(s.Points) != len(s.Rungs[0].Points) {
		t.Error("top-level points do not mirror the jacobi rung")
	}
	if f := s.Rungs[0].IterationFactor; f != 1.0 {
		t.Errorf("jacobi's iteration factor is %g, want exactly 1", f)
	}
	amg := s.Rungs[3]
	if amg.IterationFactor <= 1 {
		t.Errorf("AMG's iteration factor %g does not beat jacobi", amg.IterationFactor)
	}
	for _, r := range s.Rungs {
		if !r.BitIdentical {
			t.Errorf("rung %s not bit-identical to its serial reference", r.Precond)
		}
		if len(r.Points) != 3 {
			t.Fatalf("rung %s has %d sweep points, want 3", r.Precond, len(r.Points))
		}
		if r.SerialSeconds <= 0 || r.SerialIterations <= 0 {
			t.Errorf("rung %s: degenerate serial baseline: %.4fs, %d its", r.Precond, r.SerialSeconds, r.SerialIterations)
		}
		for i, p := range r.Points {
			if p.Parts != 1<<i {
				t.Errorf("rung %s point %d covers %d parts, want %d", r.Precond, i, p.Parts, 1<<i)
			}
			if p.Seconds <= 0 {
				t.Errorf("rung %s: degenerate sweep point %+v", r.Precond, p)
			}
			// The deterministic-reduction guarantee in its observable form:
			// the partitioned Krylov iteration replays the serial one exactly.
			if p.Iterations != r.SerialIterations {
				t.Errorf("rung %s: %d-part run took %d iterations, serial took %d", r.Precond, p.Parts, p.Iterations, r.SerialIterations)
			}
			if p.OperatorApplications < p.Iterations {
				t.Errorf("rung %s: %d-part run reports %d applications for %d iterations",
					r.Precond, p.Parts, p.OperatorApplications, p.Iterations)
			}
			// The part-resident guarantee: one scatter and one gather per time
			// step, and a populated per-phase breakdown.
			if p.Scatters != s.Steps || p.Gathers != s.Steps {
				t.Errorf("rung %s: %d-part run reports %d scatters / %d gathers for %d steps, want %d each",
					r.Precond, p.Parts, p.Scatters, p.Gathers, s.Steps, s.Steps)
			}
			if p.Phase.Total() <= 0 || p.Phase.Total() > p.Seconds {
				t.Errorf("rung %s: %d-part run has an implausible phase breakdown %+v for %.4fs total",
					r.Precond, p.Parts, p.Phase, p.Seconds)
			}
			if p.Parts == 1 {
				if p.HaloWords != 0 || p.Messages != 0 {
					t.Errorf("rung %s: 1-part run reports communication: %+v", r.Precond, p)
				}
				continue
			}
			if p.HaloWords == 0 || p.Messages == 0 {
				t.Errorf("rung %s: %d-part run reports no communication: %+v", r.Precond, p.Parts, p)
			}
		}
	}

	var tbl, js strings.Builder
	if err := s.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Partitioned implicit solve", "CG its", "bit-identical to serial", "preconditioner ladder", "amg", "chebyshev"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serial_seconds"`, `"serial_iterations"`, `"bit_identical": true`, `"gomaxprocs"`, `"num_cpu"`, `"operator_applications"`, `"phase_seconds"`, `"exchange"`, `"compute"`, `"reduce"`, `"scatters"`, `"gathers"`, `"rungs"`, `"precond"`, `"iteration_factor_vs_jacobi"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestUsolveScalingSingleRung(t *testing.T) {
	// A single-rung sweep without jacobi: iteration factors are unset, and
	// the legacy fields mirror the only rung there is.
	cfg := smallUsolveCfg()
	cfg.Preconds = []string{"amg"}
	cfg.Levels = []int{1}
	s, err := RunUsolveScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rungs) != 1 || s.Rungs[0].Precond != "amg" {
		t.Fatalf("rungs = %+v, want just amg", s.Rungs)
	}
	if s.Rungs[0].IterationFactor != 0 {
		t.Errorf("iteration factor %g without a jacobi baseline", s.Rungs[0].IterationFactor)
	}
	if s.SerialIterations != s.Rungs[0].SerialIterations {
		t.Error("legacy fields do not mirror the only rung")
	}
}

func TestUsolveScalingRejectsBadLevels(t *testing.T) {
	cfg := smallUsolveCfg()
	cfg.Levels = []int{20}
	if _, err := RunUsolveScaling(cfg); err == nil {
		t.Error("20 bisection levels accepted")
	}
}

func TestUsolveScalingRejectsUnknownPrecond(t *testing.T) {
	cfg := smallUsolveCfg()
	cfg.Preconds = []string{"ilu"}
	if _, err := RunUsolveScaling(cfg); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}
