package bench

import (
	"strings"
	"testing"

	"repro/internal/umesh"
)

func smallUsolveCfg() UsolveConfig {
	return UsolveConfig{
		Radial: umesh.RadialOptions{
			Rings: 8, BaseSectors: 8, RefineEvery: 3,
			R0: 1, DR: 4, Dz: 4, PermMD: 200,
		},
		Steps:  2,
		Levels: []int{0, 1, 2},
	}
}

func TestUsolveScalingSweep(t *testing.T) {
	s, err := RunUsolveScaling(smallUsolveCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !s.BitIdentical {
		t.Error("sweep not bit-identical to serial reference")
	}
	if len(s.Points) != 3 {
		t.Fatalf("%d sweep points, want 3", len(s.Points))
	}
	if s.SerialSeconds <= 0 || s.SerialIterations <= 0 {
		t.Errorf("degenerate serial baseline: %.4fs, %d its", s.SerialSeconds, s.SerialIterations)
	}
	for i, p := range s.Points {
		if p.Parts != 1<<i {
			t.Errorf("point %d covers %d parts, want %d", i, p.Parts, 1<<i)
		}
		if p.Seconds <= 0 {
			t.Errorf("degenerate sweep point %+v", p)
		}
		// The deterministic-reduction guarantee in its observable form: the
		// partitioned Krylov iteration replays the serial one exactly.
		if p.Iterations != s.SerialIterations {
			t.Errorf("%d-part run took %d iterations, serial took %d", p.Parts, p.Iterations, s.SerialIterations)
		}
		if p.OperatorApplications < p.Iterations {
			t.Errorf("%d-part run reports %d applications for %d iterations",
				p.Parts, p.OperatorApplications, p.Iterations)
		}
		// The part-resident guarantee: one scatter and one gather per time
		// step, and a populated per-phase breakdown.
		if p.Scatters != s.Steps || p.Gathers != s.Steps {
			t.Errorf("%d-part run reports %d scatters / %d gathers for %d steps, want %d each",
				p.Parts, p.Scatters, p.Gathers, s.Steps, s.Steps)
		}
		if p.Phase.Total() <= 0 || p.Phase.Total() > p.Seconds {
			t.Errorf("%d-part run has an implausible phase breakdown %+v for %.4fs total",
				p.Parts, p.Phase, p.Seconds)
		}
		if p.Parts == 1 {
			if p.HaloWords != 0 || p.Messages != 0 {
				t.Errorf("1-part run reports communication: %+v", p)
			}
			continue
		}
		if p.HaloWords == 0 || p.Messages == 0 {
			t.Errorf("%d-part run reports no communication: %+v", p.Parts, p)
		}
	}

	var tbl, js strings.Builder
	if err := s.Render(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Partitioned implicit solve", "CG its", "bit-identical to serial"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"serial_seconds"`, `"serial_iterations"`, `"bit_identical": true`, `"gomaxprocs"`, `"num_cpu"`, `"operator_applications"`, `"phase_seconds"`, `"exchange"`, `"compute"`, `"reduce"`, `"scatters"`, `"gathers"`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestUsolveScalingRejectsBadLevels(t *testing.T) {
	cfg := smallUsolveCfg()
	cfg.Levels = []int{20}
	if _, err := RunUsolveScaling(cfg); err == nil {
		t.Error("20 bisection levels accepted")
	}
}
