package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
)

// This file is the serving-layer load experiment: a resident-engine server
// (internal/serve) stood up in-process, measured the way a latency SLO would
// measure it. Phases: a cold-start request that pays scenario compilation
// (mesh, RCB, engine pool, preconditioner setup), warm-cache probes that pay
// one resident solve each (memoization bypassed), memo probes that repeat
// the cold payload and must be served from the result memo without a single
// new engine solve, a bit-identity check against the one-shot path, and an
// open-loop load phase driven through internal/loadgen — the same seeded
// arrival/quantile engine cmd/fvload uses against a remote daemon — over a
// mixed workload (short and long jobs, memoizable and not) so the SJF
// scheduler, the batcher and the memo all engage. The JSON report
// (BENCH_serve.json) is the serving path's trajectory anchor; the cold/warm
// ratio is the compile-amortization headline, warm/memo the solve-
// amortization one.

// ServeConfig sizes the serving-layer load experiment.
type ServeConfig struct {
	// Scenario selects the compiled configuration under test. Default: the
	// 15360-cell radial benchmark mesh, 8 RCB parts, the AMG rung at the
	// interactive tolerance 1e-2 — the compile-heavy/solve-light shape a
	// serving layer exists for.
	Scenario serve.Scenario
	// Steps is the backward-Euler step count per request (default 1).
	Steps int
	// WarmProbes is how many sequential warm-cache requests to measure; the
	// reported warm latency is their median (default 5). The memo phase runs
	// the same number of probes.
	WarmProbes int
	// Requests is the open-loop arrival count (default 60).
	Requests int
	// RatePerSec is the open-loop arrival rate (default 50 — above the
	// single-core service rate, so the load phase exercises queueing and
	// batched dispatch, not just round trips).
	RatePerSec float64
	// Seed seeds the exponential inter-arrival draws (default 1).
	Seed int64
	// ChaosRequests sizes the fault-injection phase: that many copies of the
	// reference payload against a second, fault-injected server (default 40;
	// negative disables the phase). The fault plan derives from Seed.
	ChaosRequests int
	// Server overrides the serving options. Defaults: 2 resident engines per
	// scenario (the cold request compiles the whole pool), queue depth 24;
	// everything else the serve package's own defaults.
	Server serve.Options
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Scenario == (serve.Scenario{}) {
		c.Scenario = serve.Scenario{Parts: 8, Precond: "amg", Tol: 1e-2}
	}
	if c.Steps == 0 {
		c.Steps = 1
	}
	if c.WarmProbes == 0 {
		c.WarmProbes = 5
	}
	if c.Requests == 0 {
		c.Requests = 60
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ChaosRequests == 0 {
		c.ChaosRequests = 40
	}
	if c.Server.EnginesPerScenario == 0 {
		c.Server.EnginesPerScenario = 2
	}
	if c.Server.QueueDepth == 0 {
		c.Server.QueueDepth = 24
	}
	return c
}

// ServeLoad is the experiment outcome. It serializes to the BENCH_serve.json
// baseline future PRs compare against.
type ServeLoad struct {
	Scenario    serve.Scenario `json:"scenario"`
	ScenarioKey string         `json:"scenario_key"`
	Cells       int            `json:"cells"`
	// StepsPerRequest, EnginesPerScenario, QueueDepth, BatchMax and
	// MemoCapacity echo the request shape and the serving knobs under test
	// (defaults resolved by serve.Options.WithDefaults, so bench cannot
	// drift from the serving layer).
	StepsPerRequest    int    `json:"steps_per_request"`
	EnginesPerScenario int    `json:"engines_per_scenario"`
	QueueDepth         int    `json:"queue_depth"`
	BatchMax           int    `json:"batch_max"`
	MemoCapacity       int    `json:"memo_capacity"`
	NumCPU             int    `json:"num_cpu"`
	GOMAXPROCS         int    `json:"gomaxprocs"`
	GoVersion          string `json:"go_version"`

	// ColdSeconds is the cache-miss request's latency (compilation of the
	// whole engine pool plus one solve); CompileSeconds is the server-reported
	// compile share of it. WarmSeconds is the median warm-cache latency over
	// WarmProbes sequential engine solves (WarmMinSeconds the fastest), and
	// WarmSpeedup = ColdSeconds / WarmSeconds — the compile-amortization
	// headline, required ≥ 5 for the benchmark scenario.
	ColdSeconds    float64 `json:"cold_seconds"`
	CompileSeconds float64 `json:"compile_seconds"`
	WarmSeconds    float64 `json:"warm_seconds"`
	WarmMinSeconds float64 `json:"warm_min_seconds"`
	WarmSpeedup    float64 `json:"warm_speedup"`

	// MemoSeconds is the median latency of memo-served repeats of the cold
	// payload (MemoMinSeconds the fastest) — no engine runs at all — and
	// MemoSpeedup = WarmSeconds / MemoSeconds, the solve-amortization
	// headline, required ≥ 20 for the benchmark scenario. The memo phase
	// fails outright if the server's Solves counter moves.
	MemoSeconds    float64 `json:"memo_seconds"`
	MemoMinSeconds float64 `json:"memo_min_seconds"`
	MemoSpeedup    float64 `json:"memo_speedup"`

	// BitIdentical records that the cold response, every warm
	// (engine-reused) response, every memo-served response, and a fresh
	// one-shot compile-and-solve all hashed the same final pressure field;
	// PressureSHA256 is that hash.
	BitIdentical   bool   `json:"bit_identical"`
	PressureSHA256 string `json:"pressure_sha256"`

	// Load is the open-loop phase: a loadgen report over the mixed workload
	// (memoizable short jobs, memo-bypassing short and long jobs).
	Load loadgen.Report `json:"load"`
	// Chaos is the fault-injection phase: a seeded plan of panics, stalls
	// and breakdowns against a second server, scored on availability of the
	// non-faulted requests (gate ≥ 0.99) and bit-identity of every success.
	Chaos *ChaosResult `json:"chaos,omitempty"`
	// Stats is the server's own counter block at the end of the run (cache
	// hits/misses, memo hits, scheduler decisions, admission rejections,
	// batching, phase seconds).
	Stats serve.StatsSnapshot `json:"stats"`
}

// RunServeLoad stands up a resident-engine server in-process and measures
// cold-start latency, warm-cache latency, memo-hit latency, bit-identity
// against the one-shot path, and open-loop load behavior.
func RunServeLoad(cfg ServeConfig) (*ServeLoad, error) {
	cfg = cfg.withDefaults()
	srv := serve.New(cfg.Server)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	url := ts.URL + "/v1/solve"
	client := ts.Client()

	post := func(body []byte) (*serve.SolveResponse, int, float64, error) {
		start := time.Now()
		httpRes, err := client.Post(url, "application/json", bytes.NewReader(body))
		sec := time.Since(start).Seconds()
		if err != nil {
			return nil, 0, sec, err
		}
		defer httpRes.Body.Close()
		if httpRes.StatusCode != http.StatusOK {
			io.Copy(io.Discard, httpRes.Body)
			return nil, httpRes.StatusCode, sec, nil
		}
		var res serve.SolveResponse
		if err := json.NewDecoder(httpRes.Body).Decode(&res); err != nil {
			return nil, httpRes.StatusCode, sec, err
		}
		return &res, httpRes.StatusCode, sec, nil
	}

	req := serve.SolveRequest{Scenario: cfg.Scenario, Steps: cfg.Steps}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	noMemo := req
	noMemo.NoMemo = true
	noMemoBody, err := json.Marshal(noMemo)
	if err != nil {
		return nil, err
	}

	eff := cfg.Server.WithDefaults()
	out := &ServeLoad{
		Scenario:           cfg.Scenario,
		ScenarioKey:        cfg.Scenario.Key(),
		StepsPerRequest:    cfg.Steps,
		EnginesPerScenario: eff.EnginesPerScenario,
		QueueDepth:         eff.QueueDepth,
		BatchMax:           eff.BatchMax,
		MemoCapacity:       eff.MemoCapacity,
		NumCPU:             runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		GoVersion:          runtime.Version(),
	}

	// Phase 1: cold start — the request that misses the cache and compiles
	// the scenario's whole engine pool. It also seeds the result memo.
	cold, status, coldSec, err := post(body)
	if err != nil {
		return nil, fmt.Errorf("bench: serve cold request: %w", err)
	}
	if cold == nil {
		return nil, fmt.Errorf("bench: serve cold request: HTTP %d", status)
	}
	if cold.CacheHit {
		return nil, fmt.Errorf("bench: serve cold request unexpectedly hit the cache")
	}
	out.Cells = cold.Cells
	out.ColdSeconds = coldSec
	out.CompileSeconds = cold.Timings.CompileSeconds
	out.PressureSHA256 = cold.PressureSHA256

	// Phase 2: warm-cache probes — sequential, memo bypassed, so each
	// measures one resident solve with no queueing. The engines are reused
	// across them; their hashes must all equal the cold one.
	warm := make([]float64, 0, cfg.WarmProbes)
	identical := true
	for i := 0; i < cfg.WarmProbes; i++ {
		res, status, sec, err := post(noMemoBody)
		if err != nil {
			return nil, fmt.Errorf("bench: serve warm probe %d: %w", i, err)
		}
		if res == nil {
			return nil, fmt.Errorf("bench: serve warm probe %d: HTTP %d", i, status)
		}
		if !res.CacheHit {
			return nil, fmt.Errorf("bench: serve warm probe %d missed the cache", i)
		}
		if res.MemoHit {
			return nil, fmt.Errorf("bench: serve warm probe %d hit the memo despite no_memo", i)
		}
		if res.PressureSHA256 != out.PressureSHA256 {
			identical = false
		}
		warm = append(warm, sec)
	}
	sorted := append([]float64(nil), warm...)
	sort.Float64s(sorted)
	out.WarmSeconds = loadgen.Quantile(sorted, 0.50)
	out.WarmMinSeconds = sorted[0]
	if out.WarmSeconds > 0 {
		out.WarmSpeedup = out.ColdSeconds / out.WarmSeconds
	}

	// Phase 3: memo probes — the cold payload again, now memoized. Every
	// response must be a memo hit on the cold solve's bits, and the server's
	// engine-solve counter must not move at all.
	solvesBefore := srv.Stats().Solves
	memoLat := make([]float64, 0, cfg.WarmProbes)
	for i := 0; i < cfg.WarmProbes; i++ {
		res, status, sec, err := post(body)
		if err != nil {
			return nil, fmt.Errorf("bench: serve memo probe %d: %w", i, err)
		}
		if res == nil {
			return nil, fmt.Errorf("bench: serve memo probe %d: HTTP %d", i, status)
		}
		if !res.MemoHit {
			return nil, fmt.Errorf("bench: serve memo probe %d missed the memo", i)
		}
		if res.PressureSHA256 != out.PressureSHA256 {
			identical = false
		}
		memoLat = append(memoLat, sec)
	}
	if solvesAfter := srv.Stats().Solves; solvesAfter != solvesBefore {
		return nil, fmt.Errorf("bench: memo probes triggered %d engine solves, want 0", solvesAfter-solvesBefore)
	}
	sort.Float64s(memoLat)
	out.MemoSeconds = loadgen.Quantile(memoLat, 0.50)
	out.MemoMinSeconds = memoLat[0]
	if out.MemoSeconds > 0 {
		out.MemoSpeedup = out.WarmSeconds / out.MemoSeconds
	}

	// Phase 4: bit-identity against the one-shot path — a fresh
	// compile-and-solve with no cache and no reuse must hash identically.
	oneShot, err := serve.OneShot(req)
	if err != nil {
		return nil, fmt.Errorf("bench: serve one-shot reference: %w", err)
	}
	if serve.PressureHash(oneShot.Pressure) != out.PressureSHA256 {
		identical = false
	}
	out.BitIdentical = identical

	// Phase 5: open-loop load — arrivals fire on their own schedule through
	// the shared loadgen engine, so the queue, the batcher, the admission
	// gate and the SJF scheduler all engage. The mix is heterogeneous on
	// purpose: memoizable short jobs (served from the memo), memo-bypassing
	// short jobs and 3x-longer well jobs, so the scheduler sees real cost
	// spread and the batcher sees repeated payloads.
	spec, err := serveLoadSpec(cfg, out.Cells)
	if err != nil {
		return nil, err
	}
	driver := loadgen.Driver{Post: func(it loadgen.Item) loadgen.PostResult {
		res, status, _, err := post(it.Body)
		if err != nil {
			return loadgen.PostResult{Err: err}
		}
		r := loadgen.PostResult{Status: status}
		if res != nil {
			r.Batched = res.Batched
			r.MemoHit = res.MemoHit
		}
		return r
	}}
	rep, err := driver.Run(spec)
	if err != nil {
		return nil, fmt.Errorf("bench: serve load phase: %w", err)
	}
	out.Load = *rep
	out.Stats = srv.Stats()

	// Phase 6: chaos — a seeded fault plan against a second server over the
	// same payload, scored against the fault-free hash from phase 1.
	if cfg.ChaosRequests > 0 {
		chaos, err := runChaosPhase(cfg, body, out.PressureSHA256)
		if err != nil {
			return nil, fmt.Errorf("bench: serve chaos phase: %w", err)
		}
		out.Chaos = chaos
	}
	return out, nil
}

// serveLoadSpec is the load phase's workload mix: the memoizable cold
// payload against short and long memo-bypassing well jobs.
func serveLoadSpec(cfg ServeConfig, cells int) (loadgen.Spec, error) {
	base := serve.SolveRequest{Scenario: cfg.Scenario, Steps: cfg.Steps}
	wells := []serve.WellSpec{{Cell: 0, Rate: 1.5}, {Cell: cells - 1, Rate: -1.5}}
	short := base
	short.Wells = wells
	short.NoMemo = true
	long := short
	long.Steps = 3 * cfg.Steps
	spec := loadgen.Spec{
		Requests:   cfg.Requests,
		RatePerSec: cfg.RatePerSec,
		Seed:       cfg.Seed,
	}
	for _, it := range []struct {
		name   string
		weight int
		req    serve.SolveRequest
	}{
		{"memoized", 2, base},
		{"short-wells", 2, short},
		{"long-wells", 1, long},
	} {
		b, err := json.Marshal(it.req)
		if err != nil {
			return loadgen.Spec{}, err
		}
		spec.Items = append(spec.Items, loadgen.Item{Name: it.name, Weight: it.weight, Body: b})
	}
	return spec, nil
}

// WriteJSON writes the experiment as indented JSON — the BENCH_serve.json
// baseline format.
func (s *ServeLoad) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render writes the experiment as a human-readable report.
func (s *ServeLoad) Render(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "Resident-engine serving — %d-cell scenario (%s, parts %d, tol %.0e), %d step/request, %d engines/scenario\n",
		s.Cells, s.Scenario.Precond, s.Scenario.Parts, s.Scenario.Tol, s.StepsPerRequest, s.EnginesPerScenario)
	fmt.Fprintf(tw, "host: %s, NumCPU %d, GOMAXPROCS %d\n\n", s.GoVersion, s.NumCPU, s.GOMAXPROCS)
	fmt.Fprintf(tw, "cold start (cache miss)\t%.4f s\t(compile %.4f s)\n", s.ColdSeconds, s.CompileSeconds)
	fmt.Fprintf(tw, "warm cache (median of resident solves)\t%.4f s\t(min %.4f s)\n", s.WarmSeconds, s.WarmMinSeconds)
	fmt.Fprintf(tw, "warm speedup\t%.1fx\t(required ≥ 5x)\n", s.WarmSpeedup)
	fmt.Fprintf(tw, "memo hit (median, no engine)\t%.4f s\t(min %.4f s)\n", s.MemoSeconds, s.MemoMinSeconds)
	fmt.Fprintf(tw, "memo speedup over warm\t%.1fx\t(required ≥ 20x)\n", s.MemoSpeedup)
	fmt.Fprintf(tw, "bit-identical to one-shot (incl. reuse + memo)\t%v\t\n\n", s.BitIdentical)
	l := s.Load
	fmt.Fprintf(tw, "open loop: %d arrivals at %.0f req/s (seed %d)\n", l.Requests, l.RatePerSec, l.Seed)
	fmt.Fprintf(tw, "completed\t%d\t(batched %d, memo hits %d)\n", l.Completed, l.BatchedRequests, l.MemoHits)
	fmt.Fprintf(tw, "rejected 429\t%d\t(errors %d)\n", l.Rejected429, l.Errors)
	fmt.Fprintf(tw, "sustained\t%.1f req/s\tover %.2f s\n", l.SustainedReqPerSec, l.DurationSeconds)
	fmt.Fprintf(tw, "latency p50 / p99 / max\t%.4f / %.4f / %.4f s\t\n", l.P50Seconds, l.P99Seconds, l.MaxSeconds)
	for _, it := range l.PerItem {
		fmt.Fprintf(tw, "  item %s\t%d sent, %d completed\tp50 %.4f s, memo %d\n",
			it.Name, it.Sent, it.Completed, it.P50Seconds, it.MemoHits)
	}
	if c := s.Chaos; c != nil {
		fmt.Fprintln(tw)
		fmt.Fprintf(tw, "chaos: %d requests under %d panics / %d stalls / %d breakdowns\n",
			c.Requests, c.PanicsFired, c.StallsFired, c.BreakdownsFired)
		fmt.Fprintf(tw, "completed\t%d\t(faulted %d, collateral %d)\n", c.Completed, c.Faulted, c.Collateral)
		fmt.Fprintf(tw, "availability (non-faulted)\t%.4f\t(required ≥ 0.99)\n", c.AvailabilityNonFaulted)
		fmt.Fprintf(tw, "bit-identical successes\t%v\t(engine panics %d, restarts %d, cancelled %d)\n",
			c.BitIdentical, c.EnginePanics, c.EngineRestarts, c.CancelledSolves)
	}
	fmt.Fprintln(tw)
	st := s.Stats
	fmt.Fprintf(tw, "server counters: %d requests, %d admitted, %d completed; cache %d hit / %d miss / %d evicted; memo %d hits (%d resident); %d solves (%d batches shared %d solves); sched %d decisions / %d reorders / %d aged picks\n",
		st.Requests, st.Admitted, st.Completed, st.CacheHits, st.CacheMisses, st.Evictions,
		st.MemoHits, st.MemoEntries, st.Solves, st.Batches, st.SharedSolves,
		st.SchedDecisions, st.SchedReorders, st.SchedAgedPicks)
	if s.GOMAXPROCS == 1 {
		fmt.Fprintln(tw, "note: single-core host — sustained throughput is one engine's; the pool and batcher still exercise the full dispatch path")
	}
	return tw.Flush()
}
