package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// This file is the serving-layer load experiment: a resident-engine server
// (internal/serve) stood up in-process, measured the way a latency SLO would
// measure it. Three phases: a cold-start request that pays scenario
// compilation (mesh, RCB, engine pool, preconditioner setup), warm-cache
// probes that pay only queue + solve + render on the resident engines, and an
// open-loop load phase (seeded exponential arrivals, requests fired on
// schedule regardless of completions) that records sustained throughput and
// latency quantiles under queueing, batching and admission control. The JSON
// report (BENCH_serve.json) is the serving path's trajectory anchor; the
// cold/warm ratio is the headline — it is the plan-compilation cost the
// scenario cache amortizes away.

// ServeConfig sizes the serving-layer load experiment.
type ServeConfig struct {
	// Scenario selects the compiled configuration under test. Default: the
	// 15360-cell radial benchmark mesh, 8 RCB parts, the AMG rung at the
	// interactive tolerance 1e-2 — the compile-heavy/solve-light shape a
	// serving layer exists for.
	Scenario serve.Scenario
	// Steps is the backward-Euler step count per request (default 1).
	Steps int
	// WarmProbes is how many sequential warm-cache requests to measure; the
	// reported warm latency is their median (default 5).
	WarmProbes int
	// Requests is the open-loop arrival count (default 60).
	Requests int
	// RatePerSec is the open-loop arrival rate (default 50 — above the
	// single-core service rate, so the load phase exercises queueing and
	// batched dispatch, not just round trips).
	RatePerSec float64
	// Seed seeds the exponential inter-arrival draws (default 1).
	Seed int64
	// Server overrides the serving options. Defaults: 2 resident engines per
	// scenario (the cold request compiles the whole pool), queue depth 24.
	Server serve.Options
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Scenario == (serve.Scenario{}) {
		c.Scenario = serve.Scenario{Parts: 8, Precond: "amg", Tol: 1e-2}
	}
	if c.Steps == 0 {
		c.Steps = 1
	}
	if c.WarmProbes == 0 {
		c.WarmProbes = 5
	}
	if c.Requests == 0 {
		c.Requests = 60
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Server.EnginesPerScenario == 0 {
		c.Server.EnginesPerScenario = 2
	}
	if c.Server.QueueDepth == 0 {
		c.Server.QueueDepth = 24
	}
	return c
}

// ServeLoadPhase is the open-loop phase's outcome.
type ServeLoadPhase struct {
	// Requests, RatePerSec and Seed echo the arrival process.
	Requests   int     `json:"requests"`
	RatePerSec float64 `json:"rate_per_sec"`
	Seed       int64   `json:"seed"`
	// Completed counts 200s; Rejected429 the admission rejections (token
	// bucket or full queue); BatchedRequests the completions that shared a
	// batch-mate's solve.
	Completed       int `json:"completed"`
	Rejected429     int `json:"rejected_429"`
	BatchedRequests int `json:"batched_requests"`
	// SustainedReqPerSec is completions over the span from first arrival to
	// last completion — the throughput the server actually sustained.
	SustainedReqPerSec float64 `json:"sustained_req_per_sec"`
	// Latency quantiles over the completed requests (arrival-to-response).
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	// DurationSeconds spans first arrival to last completion.
	DurationSeconds float64 `json:"duration_seconds"`
}

// ServeLoad is the experiment outcome. It serializes to the BENCH_serve.json
// baseline future PRs compare against.
type ServeLoad struct {
	Scenario    serve.Scenario `json:"scenario"`
	ScenarioKey string         `json:"scenario_key"`
	Cells       int            `json:"cells"`
	// StepsPerRequest, EnginesPerScenario, QueueDepth and BatchMax echo the
	// request shape and the serving knobs under test.
	StepsPerRequest    int    `json:"steps_per_request"`
	EnginesPerScenario int    `json:"engines_per_scenario"`
	QueueDepth         int    `json:"queue_depth"`
	BatchMax           int    `json:"batch_max"`
	NumCPU             int    `json:"num_cpu"`
	GOMAXPROCS         int    `json:"gomaxprocs"`
	GoVersion          string `json:"go_version"`

	// ColdSeconds is the cache-miss request's latency (compilation of the
	// whole engine pool plus one solve); CompileSeconds is the server-reported
	// compile share of it. WarmSeconds is the median warm-cache latency over
	// WarmProbes sequential requests (WarmMinSeconds the fastest), and
	// WarmSpeedup = ColdSeconds / WarmSeconds — the amortization headline,
	// required ≥ 5 for the benchmark scenario.
	ColdSeconds    float64 `json:"cold_seconds"`
	CompileSeconds float64 `json:"compile_seconds"`
	WarmSeconds    float64 `json:"warm_seconds"`
	WarmMinSeconds float64 `json:"warm_min_seconds"`
	WarmSpeedup    float64 `json:"warm_speedup"`

	// BitIdentical records that the cold response, every warm (engine-reused)
	// response, and a fresh one-shot compile-and-solve all hashed the same
	// final pressure field; PressureSHA256 is that hash.
	BitIdentical   bool   `json:"bit_identical"`
	PressureSHA256 string `json:"pressure_sha256"`

	Load ServeLoadPhase `json:"load"`
	// Stats is the server's own counter block at the end of the run (cache
	// hits/misses, admission rejections, batching, phase seconds).
	Stats serve.StatsSnapshot `json:"stats"`
}

// serveSample is one load-phase request's outcome.
type serveSample struct {
	status  int
	seconds float64
	batched bool
}

// RunServeLoad stands up a resident-engine server in-process and measures
// cold-start latency, warm-cache latency, bit-identity against the one-shot
// path, and open-loop load behavior.
func RunServeLoad(cfg ServeConfig) (*ServeLoad, error) {
	cfg = cfg.withDefaults()
	srv := serve.New(cfg.Server)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()
	url := ts.URL + "/v1/solve"
	client := ts.Client()

	post := func(body []byte) (*serve.SolveResponse, int, float64, error) {
		start := time.Now()
		httpRes, err := client.Post(url, "application/json", bytes.NewReader(body))
		sec := time.Since(start).Seconds()
		if err != nil {
			return nil, 0, sec, err
		}
		defer httpRes.Body.Close()
		if httpRes.StatusCode != http.StatusOK {
			io.Copy(io.Discard, httpRes.Body)
			return nil, httpRes.StatusCode, sec, nil
		}
		var res serve.SolveResponse
		if err := json.NewDecoder(httpRes.Body).Decode(&res); err != nil {
			return nil, httpRes.StatusCode, sec, err
		}
		return &res, httpRes.StatusCode, sec, nil
	}

	req := serve.SolveRequest{Scenario: cfg.Scenario, Steps: cfg.Steps}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	out := &ServeLoad{
		Scenario:           cfg.Scenario,
		ScenarioKey:        cfg.Scenario.Key(),
		StepsPerRequest:    cfg.Steps,
		EnginesPerScenario: cfg.Server.EnginesPerScenario,
		QueueDepth:         cfg.Server.QueueDepth,
		BatchMax:           cfg.Server.BatchMax,
		NumCPU:             runtime.NumCPU(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		GoVersion:          runtime.Version(),
	}
	if out.BatchMax == 0 {
		out.BatchMax = 8 // the serve default
	}

	// Phase 1: cold start — the request that misses the cache and compiles
	// the scenario's whole engine pool.
	cold, status, coldSec, err := post(body)
	if err != nil {
		return nil, fmt.Errorf("bench: serve cold request: %w", err)
	}
	if cold == nil {
		return nil, fmt.Errorf("bench: serve cold request: HTTP %d", status)
	}
	if cold.CacheHit {
		return nil, fmt.Errorf("bench: serve cold request unexpectedly hit the cache")
	}
	out.Cells = cold.Cells
	out.ColdSeconds = coldSec
	out.CompileSeconds = cold.Timings.CompileSeconds
	out.PressureSHA256 = cold.PressureSHA256

	// Phase 2: warm-cache probes — sequential, so each measures one resident
	// solve with no queueing. The engines are reused across them; their
	// hashes must all equal the cold one.
	warm := make([]float64, 0, cfg.WarmProbes)
	identical := true
	for i := 0; i < cfg.WarmProbes; i++ {
		res, status, sec, err := post(body)
		if err != nil {
			return nil, fmt.Errorf("bench: serve warm probe %d: %w", i, err)
		}
		if res == nil {
			return nil, fmt.Errorf("bench: serve warm probe %d: HTTP %d", i, status)
		}
		if !res.CacheHit {
			return nil, fmt.Errorf("bench: serve warm probe %d missed the cache", i)
		}
		if res.PressureSHA256 != out.PressureSHA256 {
			identical = false
		}
		warm = append(warm, sec)
	}
	sorted := append([]float64(nil), warm...)
	sort.Float64s(sorted)
	out.WarmSeconds = sorted[len(sorted)/2]
	out.WarmMinSeconds = sorted[0]
	if out.WarmSeconds > 0 {
		out.WarmSpeedup = out.ColdSeconds / out.WarmSeconds
	}

	// Phase 3: bit-identity against the one-shot path — a fresh
	// compile-and-solve with no cache and no reuse must hash identically.
	oneShot, err := serve.OneShot(req)
	if err != nil {
		return nil, fmt.Errorf("bench: serve one-shot reference: %w", err)
	}
	if serve.PressureHash(oneShot.Pressure) != out.PressureSHA256 {
		identical = false
	}
	out.BitIdentical = identical

	// Phase 4: open-loop load — arrivals fire on their own schedule (seeded
	// exponential inter-arrivals), not when the previous response lands, so
	// the queue, the batcher and the admission gate all engage. Two well
	// payloads alternate, so drained windows split into two batch groups.
	variant := req
	variant.Wells = []serve.WellSpec{{Cell: 0, Rate: 1.5}, {Cell: out.Cells - 1, Rate: -1.5}}
	variantBody, err := json.Marshal(variant)
	if err != nil {
		return nil, err
	}
	bodies := [2][]byte{body, variantBody}

	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivals := make([]time.Duration, cfg.Requests)
	at := 0.0
	for i := range arrivals {
		at += rng.ExpFloat64() / cfg.RatePerSec
		arrivals[i] = time.Duration(at * float64(time.Second))
	}

	samples := make([]serveSample, cfg.Requests)
	var wg sync.WaitGroup
	loadStart := time.Now()
	var lastDone atomic64Time
	for i := range arrivals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Until(loadStart.Add(arrivals[i])))
			res, status, sec, err := post(bodies[i%2])
			if err != nil {
				samples[i] = serveSample{status: -1, seconds: sec}
				return
			}
			samples[i] = serveSample{status: status, seconds: sec}
			if res != nil {
				samples[i].batched = res.Batched
			}
			lastDone.store(time.Now())
		}(i)
	}
	wg.Wait()

	load := ServeLoadPhase{
		Requests:   cfg.Requests,
		RatePerSec: cfg.RatePerSec,
		Seed:       cfg.Seed,
	}
	var latencies []float64
	for _, s := range samples {
		switch {
		case s.status == http.StatusOK:
			load.Completed++
			latencies = append(latencies, s.seconds)
			if s.batched {
				load.BatchedRequests++
			}
			if s.seconds > load.MaxSeconds {
				load.MaxSeconds = s.seconds
			}
		case s.status == http.StatusTooManyRequests:
			load.Rejected429++
		}
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		load.P50Seconds = latencies[n/2]
		load.P99Seconds = latencies[min(n-1, (n*99+99)/100)]
	}
	if t := lastDone.load(); !t.IsZero() {
		load.DurationSeconds = t.Sub(loadStart).Seconds()
	}
	if load.DurationSeconds > 0 {
		load.SustainedReqPerSec = float64(load.Completed) / load.DurationSeconds
	}
	out.Load = load
	out.Stats = srv.Stats()
	return out, nil
}

// atomic64Time is a mutex-guarded latest-completion timestamp (the load
// goroutines race to set it; only the max matters).
type atomic64Time struct {
	mu sync.Mutex
	t  time.Time
}

func (a *atomic64Time) store(t time.Time) {
	a.mu.Lock()
	if t.After(a.t) {
		a.t = t
	}
	a.mu.Unlock()
}

func (a *atomic64Time) load() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t
}

// WriteJSON writes the experiment as indented JSON — the BENCH_serve.json
// baseline format.
func (s *ServeLoad) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render writes the experiment as a human-readable report.
func (s *ServeLoad) Render(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "Resident-engine serving — %d-cell scenario (%s, parts %d, tol %.0e), %d step/request, %d engines/scenario\n",
		s.Cells, s.Scenario.Precond, s.Scenario.Parts, s.Scenario.Tol, s.StepsPerRequest, s.EnginesPerScenario)
	fmt.Fprintf(tw, "host: %s, NumCPU %d, GOMAXPROCS %d\n\n", s.GoVersion, s.NumCPU, s.GOMAXPROCS)
	fmt.Fprintf(tw, "cold start (cache miss)\t%.4f s\t(compile %.4f s)\n", s.ColdSeconds, s.CompileSeconds)
	fmt.Fprintf(tw, "warm cache (median of resident solves)\t%.4f s\t(min %.4f s)\n", s.WarmSeconds, s.WarmMinSeconds)
	fmt.Fprintf(tw, "warm speedup\t%.1fx\t(required ≥ 5x)\n", s.WarmSpeedup)
	fmt.Fprintf(tw, "bit-identical to one-shot (incl. after reuse)\t%v\t\n\n", s.BitIdentical)
	l := s.Load
	fmt.Fprintf(tw, "open loop: %d arrivals at %.0f req/s (seed %d)\n", l.Requests, l.RatePerSec, l.Seed)
	fmt.Fprintf(tw, "completed\t%d\t(batched: %d)\n", l.Completed, l.BatchedRequests)
	fmt.Fprintf(tw, "rejected 429\t%d\t\n", l.Rejected429)
	fmt.Fprintf(tw, "sustained\t%.1f req/s\tover %.2f s\n", l.SustainedReqPerSec, l.DurationSeconds)
	fmt.Fprintf(tw, "latency p50 / p99 / max\t%.4f / %.4f / %.4f s\t\n\n", l.P50Seconds, l.P99Seconds, l.MaxSeconds)
	st := s.Stats
	fmt.Fprintf(tw, "server counters: %d requests, %d admitted, %d completed; cache %d hit / %d miss / %d evicted; %d solves (%d batches shared %d solves)\n",
		st.Requests, st.Admitted, st.Completed, st.CacheHits, st.CacheMisses, st.Evictions,
		st.Solves, st.Batches, st.SharedSolves)
	if s.GOMAXPROCS == 1 {
		fmt.Fprintln(tw, "note: single-core host — sustained throughput is one engine's; the pool and batcher still exercise the full dispatch path")
	}
	return tw.Flush()
}
