package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/physics"
)

// This file is the strong-scaling experiment for the sharded parallel flat
// engine: one functional mesh, a sweep over worker counts, host wall-clock
// per sweep point, and a bit-identity check of every parallel run against
// the serial flat engine. Unlike the paper-table experiments, the quantity
// measured here is the host simulator itself — the repo's first genuinely
// multi-core execution path — so the report records the machine's CPU budget
// alongside the timings: speedup beyond GOMAXPROCS cores is impossible by
// construction, and a baseline captured on a 1-core box is still a valid
// trajectory anchor (its value is the bit-identity evidence plus the
// overhead of the sharded engine at workers=1).

// ScalingConfig sizes the strong-scaling sweep.
type ScalingConfig struct {
	// Dims is the functional mesh (default 128×128×4 — large enough in X-Y
	// that each worker owns thousands of PE columns).
	Dims mesh.Dims
	// Apps is the application count per run (default 3).
	Apps int
	// Workers lists the sweep points (default: powers of two from 1 up to
	// max(4, NumCPU), plus NumCPU itself).
	Workers []int
	// Fluid overrides the default CO2 fluid when non-nil.
	Fluid *physics.Fluid
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.Dims == (mesh.Dims{}) {
		c.Dims = mesh.Dims{Nx: 128, Ny: 128, Nz: 4}
	}
	if c.Apps == 0 {
		c.Apps = 3
	}
	if len(c.Workers) == 0 {
		c.Workers = DefaultWorkerSweep(runtime.NumCPU())
	}
	return c
}

// DefaultWorkerSweep returns powers of two from 1 up to max(4, numCPU),
// ending with numCPU when it is not itself a power of two. The sweep always
// reaches at least 4 workers so the sharding machinery is exercised (and the
// ≥4-worker speedup point exists) even when measured on a small machine.
func DefaultWorkerSweep(numCPU int) []int {
	top := numCPU
	if top < 4 {
		top = 4
	}
	return WorkerSweepUpTo(top)
}

// WorkerSweepUpTo returns powers of two from 1 up to exactly max, ending
// with max itself when it is not a power of two — the sweep an explicit
// worker cap selects.
func WorkerSweepUpTo(max int) []int {
	var ws []int
	for w := 1; w <= max; w *= 2 {
		ws = append(ws, w)
	}
	if last := ws[len(ws)-1]; max > last {
		ws = append(ws, max)
	}
	return ws
}

// ScalingPoint is one worker count's measurement.
type ScalingPoint struct {
	Workers int `json:"workers"`
	// Seconds is the host wall-clock of the application loop (setup and
	// reduction excluded, matching Result.Elapsed).
	Seconds float64 `json:"seconds"`
	// Speedup is serial-flat seconds / this point's seconds.
	Speedup float64 `json:"speedup"`
	// Efficiency is Speedup / min(Workers, GOMAXPROCS) — the fraction of
	// the usable-core ideal this point achieves.
	Efficiency float64 `json:"efficiency"`
	// McellsPerSec is host throughput in million cell updates per second.
	McellsPerSec float64 `json:"mcells_per_sec"`
}

// StrongScaling is the sweep outcome. It serializes to the BENCH_scaling.json
// baseline future PRs compare against.
type StrongScaling struct {
	Dims       mesh.Dims `json:"dims"`
	Apps       int       `json:"apps"`
	NumCPU     int       `json:"num_cpu"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	GoVersion  string    `json:"go_version"`

	// SerialSeconds is the serial RunFlat wall-clock the speedups are
	// relative to.
	SerialSeconds float64        `json:"serial_seconds"`
	Points        []ScalingPoint `json:"points"`

	// MaxSpeedup is the best sweep point's speedup; BestWorkers its count.
	MaxSpeedup  float64 `json:"max_speedup"`
	BestWorkers int     `json:"best_workers"`
	// BitIdentical records that every parallel run's residual and counters
	// matched the serial flat engine exactly — the correctness half of the
	// experiment. A divergence aborts the sweep with an error, so every
	// returned StrongScaling carries true; the field exists so the recorded
	// JSON baseline states the guarantee explicitly.
	BitIdentical bool `json:"bit_identical"`
}

// RunStrongScaling measures the sharded flat engine across worker counts
// against the serial flat baseline on one functional mesh.
func RunStrongScaling(cfg ScalingConfig) (*StrongScaling, error) {
	cfg = cfg.withDefaults()
	m, err := mesh.BuildDefault(cfg.Dims)
	if err != nil {
		return nil, err
	}
	fl := physics.DefaultFluid()
	if cfg.Fluid != nil {
		fl = *cfg.Fluid
	}
	opts := core.DefaultOptions(cfg.Apps)
	// Size each PE memory to its exact footprint: at 128×128 PEs the default
	// CS-2 budget would cost 12288 words × 4 B × 16384 PEs ≈ 800 MB of host
	// memory for no measurement benefit.
	opts.MemWords = core.WordsPerZ(opts.BufferReuse)*cfg.Dims.Nz + core.FixedWords

	// Warm-up: one untimed serial run before the measured baseline. The
	// first run of the sweep pays heap growth and page faults for every run
	// after it; without this the serial baseline is systematically penalized
	// for going first and small meshes report phantom speedups.
	if _, err := core.RunFlat(m, fl, opts); err != nil {
		return nil, fmt.Errorf("bench: warm-up run: %w", err)
	}
	runtime.GC() // start every measured run with the same collection debt
	serial, err := core.RunFlat(m, fl, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: serial baseline: %w", err)
	}

	out := &StrongScaling{
		Dims:          cfg.Dims,
		Apps:          cfg.Apps,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		GoVersion:     runtime.Version(),
		SerialSeconds: serial.Elapsed.Seconds(),
		BitIdentical:  true,
	}
	cells := float64(serial.CellsUpdated())
	for _, w := range cfg.Workers {
		if w < 1 {
			return nil, fmt.Errorf("bench: worker sweep point %d < 1", w)
		}
		popts := opts
		popts.Workers = w
		runtime.GC()
		res, err := core.RunFlatParallel(m, fl, popts)
		if err != nil {
			return nil, fmt.Errorf("bench: %d workers: %w", w, err)
		}
		for i := range serial.Residual {
			if serial.Residual[i] != res.Residual[i] {
				return nil, fmt.Errorf("bench: %d workers: residual[%d] diverged from serial flat (%g vs %g)",
					w, i, res.Residual[i], serial.Residual[i])
			}
		}
		if serial.Counters != res.Counters {
			return nil, fmt.Errorf("bench: %d workers: counters diverged from serial flat", w)
		}
		sec := res.Elapsed.Seconds()
		usable := w
		if g := out.GOMAXPROCS; usable > g {
			usable = g
		}
		pt := ScalingPoint{Workers: w, Seconds: sec}
		if sec > 0 {
			pt.Speedup = out.SerialSeconds / sec
			pt.Efficiency = pt.Speedup / float64(usable)
			pt.McellsPerSec = cells / sec / 1e6
		}
		out.Points = append(out.Points, pt)
		if pt.Speedup > out.MaxSpeedup {
			out.MaxSpeedup = pt.Speedup
			out.BestWorkers = w
		}
	}
	return out, nil
}

// WriteJSON writes the sweep as indented JSON — the BENCH_scaling.json
// baseline format.
func (s *StrongScaling) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render writes the sweep as a table.
func (s *StrongScaling) Render(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "Strong scaling — sharded flat engine, %dx%dx%d mesh, %d applications\n",
		s.Dims.Nx, s.Dims.Ny, s.Dims.Nz, s.Apps)
	fmt.Fprintf(tw, "host: %s, NumCPU %d, GOMAXPROCS %d\n", s.GoVersion, s.NumCPU, s.GOMAXPROCS)
	fmt.Fprintf(tw, "serial flat baseline: %.4f s\n", s.SerialSeconds)
	fmt.Fprintln(tw, "workers\ttime [s]\tspeedup\tefficiency\tMcell/s")
	for _, p := range s.Points {
		fmt.Fprintf(tw, "%d\t%.4f\t%.2fx\t%.0f%%\t%.2f\n",
			p.Workers, p.Seconds, p.Speedup, 100*p.Efficiency, p.McellsPerSec)
	}
	fmt.Fprintf(tw, "\nbest: %.2fx at %d workers; bit-identical to serial: %v\n",
		s.MaxSpeedup, s.BestWorkers, s.BitIdentical)
	if s.GOMAXPROCS == 1 {
		fmt.Fprintln(tw, "note: single-core host — wall-clock speedup is impossible here; the sweep still verifies the sharded engine end to end")
	}
	elapsed := time.Duration(0)
	for _, p := range s.Points {
		elapsed += time.Duration(p.Seconds * float64(time.Second))
	}
	fmt.Fprintf(tw, "sweep device time: %v\n", elapsed.Round(time.Millisecond))
	return tw.Flush()
}
