package bench

import (
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestRunServeLoadSmall drives the whole serving experiment on the small
// 48-cell scenario: every phase completes, the memo probes are served
// without a new engine solve, bit-identity holds across cold, warm, memo
// and one-shot, and the load phase accounts for every arrival.
func TestRunServeLoadSmall(t *testing.T) {
	cfg := ServeConfig{
		Scenario:   serve.Scenario{Rings: 6, Sectors: 8, Parts: 2},
		WarmProbes: 3,
		Requests:   20,
		RatePerSec: 200,
		Server:     serve.Options{QueueDepth: 64},
	}
	res, err := RunServeLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 48 {
		t.Errorf("Cells = %d, want 48", res.Cells)
	}
	if !res.BitIdentical {
		t.Error("bit identity lost across cold/warm/memo/one-shot")
	}
	if res.MemoSeconds <= 0 || res.MemoSpeedup <= 0 {
		t.Errorf("memo phase empty: %g s, %gx", res.MemoSeconds, res.MemoSpeedup)
	}
	if res.Stats.MemoHits < uint64(cfg.WarmProbes) {
		t.Errorf("MemoHits = %d, want ≥ %d (every memo probe)", res.Stats.MemoHits, cfg.WarmProbes)
	}
	if res.Stats.SchedDecisions == 0 {
		t.Error("load phase recorded no scheduler decisions")
	}
	l := res.Load
	if l.Completed+l.Rejected429+l.Errors != cfg.Requests {
		t.Errorf("load accounting off: %d + %d + %d != %d",
			l.Completed, l.Rejected429, l.Errors, cfg.Requests)
	}
	if l.Errors != 0 {
		t.Errorf("load phase had %d errors", l.Errors)
	}
	if len(l.PerItem) != 3 {
		t.Errorf("per-item breakdown has %d entries, want 3", len(l.PerItem))
	}
	// BatchMax was left zero in the config: the report must echo the serve
	// default, not a bench-local copy of it.
	if res.BatchMax != serve.DefaultBatchMax || res.MemoCapacity != serve.DefaultMemoCapacity {
		t.Errorf("knob echo drifted from serve defaults: batch %d, memo %d", res.BatchMax, res.MemoCapacity)
	}
	c := res.Chaos
	if c == nil {
		t.Fatal("chaos phase missing from the report")
	}
	if c.Requests != 40 {
		t.Errorf("chaos requests = %d, want the default 40", c.Requests)
	}
	if c.PanicsFired+c.StallsFired+c.BreakdownsFired == 0 {
		t.Error("chaos phase fired no faults")
	}
	if c.Completed+c.Faulted+c.Collateral != c.Requests {
		t.Errorf("chaos accounting off: %d + %d + %d != %d",
			c.Completed, c.Faulted, c.Collateral, c.Requests)
	}
	if c.AvailabilityNonFaulted < 0.99 {
		t.Errorf("chaos availability %.4f below the 0.99 gate", c.AvailabilityNonFaulted)
	}
	if !c.BitIdentical {
		t.Error("chaos-phase successes diverged from the fault-free reference")
	}
	if c.EnginePanics != uint64(c.PanicsFired) {
		t.Errorf("EnginePanics = %d, want %d (one per fired panic)", c.EnginePanics, c.PanicsFired)
	}
	var sb strings.Builder
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"memo hit", "memo speedup", "sched", "chaos", "availability"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q:\n%s", want, sb.String())
		}
	}
}
