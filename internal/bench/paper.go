// Package bench regenerates every table and figure of the paper's
// evaluation (§7): functional runs on the simulators supply measured
// counters and validated numerics; the calibrated performance model projects
// them to hardware scale; and each experiment's output pairs the paper's
// published value with the reproduced one.
package bench

import "repro/internal/mesh"

// PaperScale is the largest evaluated configuration: a 750×994×246 mesh and
// 1000 applications of Algorithm 1 (Table 1; Table 2's last row prints
// "750 950" but reports 183,393,000 cells = 750·994·246, so 994 is taken).
var PaperScale = struct {
	Dims mesh.Dims
	Apps int
}{mesh.Dims{Nx: 750, Ny: 994, Nz: 246}, 1000}

// Paper Table 1: wall-clock averages and standard deviations, seconds.
var PaperTable1 = struct {
	CS2, CS2Std   float64
	RAJA, RAJAStd float64
	CUDA, CUDAStd float64
	SpeedupVsRAJA float64
}{
	CS2: 0.0823, CS2Std: 0.0000014,
	RAJA: 16.8378, RAJAStd: 0.0194403,
	CUDA: 14.6573, CUDAStd: 0.0111278,
	SpeedupVsRAJA: 204,
}

// PaperTable2Row is one weak-scaling configuration.
type PaperTable2Row struct {
	Nx, Ny, Nz int
	Cells      int
	Gcells     float64 // throughput, Gcell/s
	CS2Time    float64 // s
	A100Time   float64 // s
}

// PaperTable2 lists §7.2's weak-scaling measurements.
var PaperTable2 = []PaperTable2Row{
	{200, 200, 246, 9840000, 121.01, 0.0813, 0.9040},
	{400, 400, 246, 39360000, 481.43, 0.0817, 3.2649},
	{600, 600, 246, 88560000, 1078.79, 0.0821, 7.2440},
	{750, 600, 246, 110700000, 1347.21, 0.0821, 9.6825},
	{750, 800, 246, 147600000, 1794.01, 0.0822, 13.2407},
	{750, 994, 246, 183393000, 2227.38, 0.0823, 16.8378},
}

// PaperTable3 is the CS-2 time split on the largest mesh.
var PaperTable3 = struct {
	Movement, Computation, Total float64 // s
	MovementPct, ComputationPct  float64
}{0.0199, 0.0624, 0.0823, 24.18, 75.82}

// PaperTable4Row is one instruction-class row of Table 4.
type PaperTable4Row struct {
	Op          string
	Count       float64 // per interior cell
	FlopsPerOp  float64
	LoadsPerOp  float64 // memory loads per element
	StoresPerOp float64
	FabricPerOp float64 // fabric loads per element
}

// PaperTable4 lists the per-cell instruction and traffic counts.
var PaperTable4 = []PaperTable4Row{
	{"FMUL", 60, 1, 2, 1, 0},
	{"FSUB", 40, 1, 2, 1, 0},
	{"FNEG", 10, 1, 1, 1, 0},
	{"FADD", 10, 1, 2, 1, 0},
	{"FMA", 10, 2, 3, 1, 0},
	{"FMOV", 16, 0, 0, 1, 1},
}

// Paper §7.2–7.3 headline characteristics.
var PaperHeadline = struct {
	CS2Tflops        float64
	CS2PowerW        float64
	CS2GflopsPerWatt float64
	EnergyRatio      float64
	A100AI           float64
	A100PeakFrac     float64
	A100Warps        float64
	A100Occupancy    float64
	AIMemory         float64
	AIFabric         float64
}{
	CS2Tflops:        311.85,
	CS2PowerW:        23000,
	CS2GflopsPerWatt: 13.67,
	EnergyRatio:      2.2,
	A100AI:           2.11,
	A100PeakFrac:     0.76,
	A100Warps:        30.79,
	A100Occupancy:    0.4811,
	AIMemory:         0.0862,
	AIFabric:         2.1875,
}
