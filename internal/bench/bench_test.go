package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mesh"
)

func smallCfg() Config {
	return Config{
		FuncDims:  mesh.Dims{Nx: 8, Ny: 6, Nz: 5},
		FuncApps:  2,
		UseFabric: true,
	}
}

func TestMeasureValidates(t *testing.T) {
	meas, err := Measure(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if meas.DataflowMaxRelErr > 2e-3 {
		t.Errorf("dataflow rel err %g too large", meas.DataflowMaxRelErr)
	}
	if meas.GPUMaxRelErr > 2e-3 {
		t.Errorf("GPU rel err %g too large", meas.GPUMaxRelErr)
	}
	if meas.Dataflow.Interior.FMUL != 60 {
		t.Errorf("interior FMUL = %g", meas.Dataflow.Interior.FMUL)
	}
	if meas.RAJAStats.Flops == 0 || meas.CUDAStats.Flops == 0 {
		t.Error("GPU stats empty")
	}
}

func TestMeasureRejectsThinMesh(t *testing.T) {
	cfg := smallCfg()
	cfg.FuncDims = mesh.Dims{Nx: 2, Ny: 6, Nz: 5}
	if _, err := Measure(cfg); err == nil {
		t.Error("mesh without interior PE accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	var cfg Config
	got := cfg.withDefaults()
	if got.FuncDims.Cells() == 0 || got.FuncApps == 0 || !got.UseFabric {
		t.Errorf("defaults wrong: %+v", got)
	}
}

func TestTable1ReproducesPaper(t *testing.T) {
	t1, err := RunTable1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(t1.CS2.TotalTime-PaperTable1.CS2) / PaperTable1.CS2; e > 0.005 {
		t.Errorf("CS-2 %.4f vs paper %.4f", t1.CS2.TotalTime, PaperTable1.CS2)
	}
	if e := math.Abs(t1.RAJA.TotalTime-PaperTable1.RAJA) / PaperTable1.RAJA; e > 0.01 {
		t.Errorf("RAJA %.4f vs paper %.4f", t1.RAJA.TotalTime, PaperTable1.RAJA)
	}
	if e := math.Abs(t1.CUDA.TotalTime-PaperTable1.CUDA) / PaperTable1.CUDA; e > 0.01 {
		t.Errorf("CUDA %.4f vs paper %.4f", t1.CUDA.TotalTime, PaperTable1.CUDA)
	}
	if t1.SpeedupVsRAJA < 195 || t1.SpeedupVsRAJA > 213 {
		t.Errorf("speedup %.1f, paper 204", t1.SpeedupVsRAJA)
	}
	if math.Abs(t1.EnergyRatio-2.2) > 0.15 {
		t.Errorf("energy ratio %.2f, paper 2.2", t1.EnergyRatio)
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	t2, err := RunTable2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != len(PaperTable2) {
		t.Fatalf("%d rows, want %d", len(t2.Rows), len(PaperTable2))
	}
	for i, r := range t2.Rows {
		// CS-2 nearly flat: every model value within 0.5% of the paper row.
		if e := math.Abs(r.ModelCS2Time-r.PaperCS2Time) / r.PaperCS2Time; e > 0.005 {
			t.Errorf("row %d: CS-2 %.4f vs %.4f", i, r.ModelCS2Time, r.PaperCS2Time)
		}
		// A100 linear: within 13% (the paper's own rows deviate from linear).
		if e := math.Abs(r.ModelA100Time-r.PaperA100Time) / r.PaperA100Time; e > 0.13 {
			t.Errorf("row %d: A100 %.4f vs %.4f", i, r.ModelA100Time, r.PaperA100Time)
		}
		if i > 0 {
			if r.ModelCS2Time < t2.Rows[i-1].ModelCS2Time {
				t.Error("CS-2 model time decreased")
			}
			if r.ModelA100Time <= t2.Rows[i-1].ModelA100Time {
				t.Error("A100 model time not increasing")
			}
		}
	}
	// Crossover shape: CS-2 flat (max/min < 1.02), A100 grows ~18.6x.
	cs2Ratio := t2.Rows[len(t2.Rows)-1].ModelCS2Time / t2.Rows[0].ModelCS2Time
	if cs2Ratio > 1.02 {
		t.Errorf("CS-2 weak scaling not flat: ratio %.3f", cs2Ratio)
	}
	a100Ratio := t2.Rows[len(t2.Rows)-1].ModelA100Time / t2.Rows[0].ModelA100Time
	if a100Ratio < 15 {
		t.Errorf("A100 scaling ratio %.1f, want ~18.6", a100Ratio)
	}
}

func TestTable3SplitAndAblation(t *testing.T) {
	t3, err := RunTable3(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(100*t3.Model.CommFraction - PaperTable3.MovementPct); e > 0.5 {
		t.Errorf("movement %% = %.2f, paper %.2f", 100*t3.Model.CommFraction, PaperTable3.MovementPct)
	}
	if t3.CommOnlyFabricWords != t3.FullFabricWords {
		t.Errorf("comm-only moved %d words, full run %d — ablation changed the traffic",
			t3.CommOnlyFabricWords, t3.FullFabricWords)
	}
	if t3.CommOnlyFlops != 0 {
		t.Errorf("comm-only executed %d FLOPs", t3.CommOnlyFlops)
	}
	if e := math.Abs(t3.CommOnlyModel.TotalTime-PaperTable3.Movement) / PaperTable3.Movement; e > 0.02 {
		t.Errorf("comm-only model %.4f vs paper 0.0199", t3.CommOnlyModel.TotalTime)
	}
}

func TestTable4ExactCounts(t *testing.T) {
	t4, err := RunTable4(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range PaperTable4 {
		got, err := t4.MeasuredCount(row.Op)
		if err != nil {
			t.Fatal(err)
		}
		if got != row.Count {
			t.Errorf("%s = %g, paper %g", row.Op, got, row.Count)
		}
	}
	if t4.MeasuredMemAccesses != 406 || t4.MeasuredFabric != 16 || t4.MeasuredFlops != 140 {
		t.Errorf("totals %g/%g/%g, want 406/16/140",
			t4.MeasuredMemAccesses, t4.MeasuredFabric, t4.MeasuredFlops)
	}
	if _, err := t4.MeasuredCount("FDIV"); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestFig8Classifications(t *testing.T) {
	f, err := RunFig8(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if f.CS2MemBound != "bandwidth-bound" {
		t.Errorf("CS-2 memory dot: %s", f.CS2MemBound)
	}
	if f.CS2FabBound != "compute-bound" {
		t.Errorf("CS-2 fabric dot: %s", f.CS2FabBound)
	}
	if f.A100Bound != "bandwidth-bound" {
		t.Errorf("A100 dot: %s", f.A100Bound)
	}
	if math.Abs(f.A100AI-PaperHeadline.A100AI) > 0.05 {
		t.Errorf("A100 AI %.3f, paper %.2f", f.A100AI, PaperHeadline.A100AI)
	}
	if math.Abs(f.A100FracPeak-PaperHeadline.A100PeakFrac) > 0.01 {
		t.Errorf("A100 fraction %.3f, paper %.2f", f.A100FracPeak, PaperHeadline.A100PeakFrac)
	}
	if !strings.Contains(f.CS2Chart, "ceiling") || !strings.Contains(f.A100Chart, "ceiling") {
		t.Error("charts missing ceilings")
	}
}

func TestAblations(t *testing.T) {
	cfg := smallCfg()
	diag, err := RunAblationDiagonals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Slowdown >= 1 {
		t.Errorf("removing diagonals should be faster, got %.2fx", diag.Slowdown)
	}
	vec, err := RunAblationVectorization(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Slowdown <= 1.2 {
		t.Errorf("scalar kernel should be clearly slower, got %.2fx", vec.Slowdown)
	}
	ovl, err := RunAblationOverlap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ovl.Slowdown <= 1 || ovl.Slowdown > 1.5 {
		t.Errorf("overlap-off slowdown %.2fx out of expected band", ovl.Slowdown)
	}
	buf, err := RunAblationBufferReuse(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if buf.BaselineModelTime < 246 || buf.VariantModelTime >= 246 {
		t.Errorf("buffer-reuse capacity story broken: reuse max %g, naive max %g",
			buf.BaselineModelTime, buf.VariantModelTime)
	}
}

func TestRenderers(t *testing.T) {
	cfg := smallCfg()
	var sb strings.Builder
	t1, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Render(&sb); err != nil {
		t.Fatal(err)
	}
	t2, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Render(&sb); err != nil {
		t.Fatal(err)
	}
	t3, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.Render(&sb); err != nil {
		t.Fatal(err)
	}
	t4, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := t4.Render(&sb); err != nil {
		t.Fatal(err)
	}
	f8, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f8.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Dataflow/CSL", "GPU/RAJA", "GPU/CUDA",
		"Table 2", "200x200x246",
		"Table 3", "Data movement",
		"Table 4", "FMUL", "FMOV",
		"Figure 8", "roofline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
