package fabric

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dsd"
)

// Config sizes a fabric. Buffer capacities are in wavelets; callers size
// them from their protocol's per-application traffic (the core engine uses
// ~8·Nz per link) so sends never block in a correct run.
type Config struct {
	Width, Height int
	// MemWords is each PE's private memory capacity in float32 words
	// (WSE-2: 12288 words = 48 KiB).
	MemWords int
	// LinkBuffer is the per-link channel capacity.
	LinkBuffer int
	// RampBuffer is the router→worker and worker→router channel capacity.
	RampBuffer int
	// RecvTimeout bounds a worker's Recv; it turns protocol deadlocks into
	// errors. Zero selects a generous default.
	RecvTimeout time.Duration
}

// DefaultRecvTimeout converts lost-wavelet hangs into test failures.
const DefaultRecvTimeout = 30 * time.Second

func (c Config) withDefaults() Config {
	if c.MemWords == 0 {
		c.MemWords = 12288
	}
	if c.LinkBuffer == 0 {
		c.LinkBuffer = 4096
	}
	if c.RampBuffer == 0 {
		c.RampBuffer = 8192
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = DefaultRecvTimeout
	}
	return c
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("fabric: dimensions must be positive, got %dx%d", c.Width, c.Height)
	}
	if c.LinkBuffer < 1 || c.RampBuffer < 1 {
		return fmt.Errorf("fabric: buffers must hold at least one wavelet")
	}
	if c.MemWords <= 0 {
		return fmt.Errorf("fabric: PE memory must be positive, got %d words", c.MemWords)
	}
	return nil
}

// PE is one processing element: coordinates, private memory and vector
// engine, the worker-facing ramp, and its router. Worker programs run with
// exclusive access to Mem/Eng; the router goroutine never touches them.
type PE struct {
	X, Y int
	Mem  *dsd.Memory
	Eng  *dsd.Engine

	fab     *Fabric
	rt      *router
	in      [4]chan Wavelet // indexed by the local port the data arrives on
	out     [4]chan Wavelet // indexed by the local port the data leaves on
	rampIn  chan Wavelet
	rampOut chan Wavelet
}

// link returns the outgoing channel for a fabric port (nil at the edge).
func (pe *PE) link(p Port) chan Wavelet {
	if p >= PortRamp {
		return nil
	}
	return pe.out[p]
}

// HasNeighbor reports whether a fabric neighbor exists on port p.
func (pe *PE) HasNeighbor(p Port) bool { return p < PortRamp && pe.out[p] != nil }

// Router exposes the PE's router for route configuration (before Run) and
// for counter/position inspection (after).
func (pe *PE) Router() *router { return pe.rt }

// Send emits one wavelet from the worker onto the ramp; the router forwards
// it according to the wavelet color's active route.
func (pe *PE) Send(w Wavelet) { pe.rampOut <- w }

// SendColumn emits a whole float32 column as consecutive wavelets of one
// color — the paper's "local block of data of length Nz × 2" per direction.
func (pe *PE) SendColumn(c Color, vals []float32) {
	for _, v := range vals {
		pe.rampOut <- FromF32(c, v)
	}
}

// ErrRecvTimeout reports a worker receive that waited longer than the
// configured timeout — in a correct protocol this means a lost or misrouted
// wavelet.
var ErrRecvTimeout = errors.New("fabric: receive timed out")

// Recv returns the next wavelet delivered to this PE's ramp.
func (pe *PE) Recv() (Wavelet, error) {
	select {
	case w, ok := <-pe.rampIn:
		if !ok {
			return Wavelet{}, errors.New("fabric: ramp closed")
		}
		return w, nil
	case <-time.After(pe.fab.cfg.RecvTimeout):
		return Wavelet{}, fmt.Errorf("%w: PE(%d,%d)", ErrRecvTimeout, pe.X, pe.Y)
	}
}

// Fabric is the W×H mesh of PEs.
type Fabric struct {
	cfg  Config
	pes  []*PE
	stop chan struct{}
}

// New builds a fabric with unconnected routes; callers install routes on
// each PE's router, then call Run.
func New(cfg Config) (*Fabric, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg, stop: make(chan struct{})}
	f.pes = make([]*PE, cfg.Width*cfg.Height)
	// One contiguous arena for every PE memory: per-PE views are carved out
	// of it, so the fabric's working set is one allocation instead of W·H.
	slab := make([]float32, cfg.Width*cfg.Height*cfg.MemWords)
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			off := (y*cfg.Width + x) * cfg.MemWords
			mem, err := dsd.NewMemoryFromSlab(slab[off : off+cfg.MemWords : off+cfg.MemWords])
			if err != nil {
				return nil, err
			}
			pe := &PE{
				X: x, Y: y,
				Mem:     mem,
				fab:     f,
				rampIn:  make(chan Wavelet, cfg.RampBuffer),
				rampOut: make(chan Wavelet, cfg.RampBuffer),
			}
			pe.Eng = dsd.NewEngine(mem)
			pe.rt = &router{pe: pe}
			f.pes[y*cfg.Width+x] = pe
		}
	}
	// Wire links: the out-channel of a PE on port p is the in-channel of the
	// neighbor on the opposite port.
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			pe := f.PE(x, y)
			if x+1 < cfg.Width {
				ch := make(chan Wavelet, cfg.LinkBuffer)
				pe.out[PortEast] = ch
				f.PE(x+1, y).in[PortWest] = ch
			}
			if y+1 < cfg.Height {
				ch := make(chan Wavelet, cfg.LinkBuffer)
				pe.out[PortSouth] = ch
				f.PE(x, y+1).in[PortNorth] = ch
			}
			if x > 0 {
				ch := make(chan Wavelet, cfg.LinkBuffer)
				pe.out[PortWest] = ch
				f.PE(x-1, y).in[PortEast] = ch
			}
			if y > 0 {
				ch := make(chan Wavelet, cfg.LinkBuffer)
				pe.out[PortNorth] = ch
				f.PE(x, y-1).in[PortSouth] = ch
			}
		}
	}
	return f, nil
}

// Width returns the fabric width in PEs.
func (f *Fabric) Width() int { return f.cfg.Width }

// Height returns the fabric height in PEs.
func (f *Fabric) Height() int { return f.cfg.Height }

// PE returns the processing element at (x, y).
func (f *Fabric) PE(x, y int) *PE {
	if x < 0 || x >= f.cfg.Width || y < 0 || y >= f.cfg.Height {
		panic(fmt.Sprintf("fabric: PE(%d,%d) outside %dx%d fabric", x, y, f.cfg.Width, f.cfg.Height))
	}
	return f.pes[y*f.cfg.Width+x]
}

// ForEachPE visits every PE in row-major order (host-side setup).
func (f *Fabric) ForEachPE(fn func(pe *PE) error) error {
	for _, pe := range f.pes {
		if err := fn(pe); err != nil {
			return err
		}
	}
	return nil
}

// Run starts every router, executes program on every PE's worker goroutine,
// waits for all workers, then stops the routers. It returns the combined
// worker and routing errors. Run may be called once per Fabric.
func (f *Fabric) Run(program func(pe *PE) error) error {
	var routers sync.WaitGroup
	for _, pe := range f.pes {
		routers.Add(1)
		go func(pe *PE) {
			defer routers.Done()
			pe.rt.run(f.stop)
		}(pe)
	}

	errs := make([]error, len(f.pes))
	var workers sync.WaitGroup
	for i, pe := range f.pes {
		workers.Add(1)
		go func(i int, pe *PE) {
			defer workers.Done()
			defer close(pe.rampOut)
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("fabric: PE(%d,%d) worker panicked: %v", pe.X, pe.Y, r)
				}
			}()
			errs[i] = program(pe)
		}(i, pe)
	}
	workers.Wait()
	close(f.stop)
	routers.Wait()

	var all []error
	for i, err := range errs {
		if err != nil {
			all = append(all, err)
			if len(all) >= 8 { // cap the error avalanche; the first few tell the story
				all = append(all, fmt.Errorf("fabric: ... %d more worker errors suppressed", len(f.pes)-i))
				break
			}
		}
	}
	for _, pe := range f.pes {
		if pe.rt.routeErr != nil {
			all = append(all, pe.rt.routeErr)
			if len(all) >= 16 {
				break
			}
		}
	}
	return errors.Join(all...)
}

// TotalCounters sums router counters across the fabric.
type TotalCounters struct {
	SentFromRamp, DeliveredToPE, Forwarded, Commands, DroppedAtStop uint64
}

// Totals aggregates all router counters (call after Run).
func (f *Fabric) Totals() TotalCounters {
	var t TotalCounters
	for _, pe := range f.pes {
		t.SentFromRamp += pe.rt.C.SentFromRamp.Load()
		t.DeliveredToPE += pe.rt.C.DeliveredToPE.Load()
		t.Forwarded += pe.rt.C.Forwarded.Load()
		t.Commands += pe.rt.C.Commands.Load()
		t.DroppedAtStop += pe.rt.C.DroppedAtStop.Load()
	}
	return t
}

// EngineCounters sums the dsd vector-engine counters across all PEs.
func (f *Fabric) EngineCounters() dsd.Counters {
	var c dsd.Counters
	for _, pe := range f.pes {
		pe.Eng.AddCounters(&c)
	}
	return c
}
