package fabric

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/dsd"
)

func newFabric(t *testing.T, w, h int) *Fabric {
	t.Helper()
	f, err := New(Config{Width: w, Height: h, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 3},
		{Width: 3, Height: -1},
		{Width: 2, Height: 2, LinkBuffer: -4},
		{Width: 2, Height: 2, MemWords: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTopologyWiring(t *testing.T) {
	f := newFabric(t, 3, 2)
	// Corner (0,0): east and south neighbors only.
	pe := f.PE(0, 0)
	if pe.HasNeighbor(PortWest) || pe.HasNeighbor(PortNorth) {
		t.Error("corner PE claims off-fabric neighbors")
	}
	if !pe.HasNeighbor(PortEast) || !pe.HasNeighbor(PortSouth) {
		t.Error("corner PE missing real neighbors")
	}
	// Out-channel of (0,0) east must be in-channel of (1,0) west.
	if f.PE(0, 0).out[PortEast] != f.PE(1, 0).in[PortWest] {
		t.Error("east link not shared")
	}
	if f.PE(1, 1).out[PortNorth] != f.PE(1, 0).in[PortSouth] {
		t.Error("north link not shared")
	}
}

func TestPEPanicsOutsideFabric(t *testing.T) {
	f := newFabric(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("PE(5,5) did not panic")
		}
	}()
	f.PE(5, 5)
}

func TestPortHelpers(t *testing.T) {
	if PortNorth.Opposite() != PortSouth || PortEast.Opposite() != PortWest {
		t.Error("opposites wrong")
	}
	// §5.2.2 clockwise relay rule.
	if PortWest.ClockwiseTurn() != PortSouth ||
		PortSouth.ClockwiseTurn() != PortEast ||
		PortEast.ClockwiseTurn() != PortNorth ||
		PortNorth.ClockwiseTurn() != PortWest {
		t.Error("clockwise turns wrong")
	}
	if PortRamp.String() != "ramp" || Port(9).String() == "" {
		t.Error("port names wrong")
	}
}

func TestOppositeOfRampPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PortRamp.Opposite did not panic")
		}
	}()
	_ = PortRamp.Opposite()
}

func TestWaveletF32RoundTrip(t *testing.T) {
	for _, v := range []float32{0, 1.5, -2.25e7, float32(math.Pi)} {
		w := FromF32(3, v)
		if w.F32() != v || w.Color != 3 {
			t.Errorf("round trip of %g failed", v)
		}
	}
}

func TestCommandEncoding(t *testing.T) {
	data := EncodeCommand(7, 1)
	c, p := DecodeCommand(data)
	if c != 7 || p != 1 {
		t.Errorf("decode = (%d,%d)", c, p)
	}
	c, p = DecodeCommand(EncodeCommand(23, TogglePosition))
	if c != 23 || p != TogglePosition {
		t.Errorf("toggle decode = (%d,%d)", c, p)
	}
}

// TestPointToPoint sends a column east across a 2×1 fabric with a static
// route and checks delivery order and counters.
func TestPointToPoint(t *testing.T) {
	f := newFabric(t, 2, 1)
	const col Color = 2
	if err := f.PE(0, 0).Router().SetRoute(col, 0, PortRamp, PortEast); err != nil {
		t.Fatal(err)
	}
	if err := f.PE(1, 0).Router().SetRoute(col, 0, PortWest, PortRamp); err != nil {
		t.Fatal(err)
	}
	sent := []float32{1, 2, 3, 4, 5}
	var got []float32
	err := f.Run(func(pe *PE) error {
		if pe.X == 0 {
			pe.SendColumn(col, sent)
			return nil
		}
		for range sent {
			w, err := pe.Recv()
			if err != nil {
				return err
			}
			if w.Color != col {
				return fmt.Errorf("wrong color %d", w.Color)
			}
			got = append(got, w.F32())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sent {
		if got[i] != v {
			t.Fatalf("got[%d] = %g, want %g (order must be preserved)", i, got[i], v)
		}
	}
	tot := f.Totals()
	if tot.SentFromRamp != 5 || tot.DeliveredToPE != 5 || tot.Forwarded != 0 {
		t.Errorf("counters %+v", tot)
	}
	if tot.DroppedAtStop != 0 {
		t.Errorf("dropped %d wavelets", tot.DroppedAtStop)
	}
}

// TestMultiHopForward routes a wavelet through an intermediary router
// (west→east pass-through) without worker involvement.
func TestMultiHopForward(t *testing.T) {
	f := newFabric(t, 3, 1)
	const col Color = 4
	if err := f.PE(0, 0).Router().SetRoute(col, 0, PortRamp, PortEast); err != nil {
		t.Fatal(err)
	}
	if err := f.PE(1, 0).Router().SetRoute(col, 0, PortWest, PortEast); err != nil {
		t.Fatal(err)
	}
	if err := f.PE(2, 0).Router().SetRoute(col, 0, PortWest, PortRamp); err != nil {
		t.Fatal(err)
	}
	var got float32
	err := f.Run(func(pe *PE) error {
		switch pe.X {
		case 0:
			pe.Send(FromF32(col, 42))
		case 2:
			w, err := pe.Recv()
			if err != nil {
				return err
			}
			got = w.F32()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %g, want 42", got)
	}
	if f.Totals().Forwarded != 1 {
		t.Errorf("Forwarded = %d, want 1", f.Totals().Forwarded)
	}
}

// TestBroadcastFanout checks a route with multiple outputs (ramp → E+S+ramp).
func TestBroadcastFanout(t *testing.T) {
	f := newFabric(t, 2, 2)
	const col Color = 5
	if err := f.PE(0, 0).Router().SetRoute(col, 0, PortRamp, PortEast, PortSouth, PortRamp); err != nil {
		t.Fatal(err)
	}
	f.PE(1, 0).Router().SetRoute(col, 0, PortWest, PortRamp)
	f.PE(0, 1).Router().SetRoute(col, 0, PortNorth, PortRamp)
	got := make([]float32, 3)
	err := f.Run(func(pe *PE) error {
		switch {
		case pe.X == 0 && pe.Y == 0:
			pe.Send(FromF32(col, 7))
			w, err := pe.Recv()
			if err != nil {
				return err
			}
			got[0] = w.F32()
		case pe.X == 1 && pe.Y == 0:
			w, err := pe.Recv()
			if err != nil {
				return err
			}
			got[1] = w.F32()
		case pe.X == 0 && pe.Y == 1:
			w, err := pe.Recv()
			if err != nil {
				return err
			}
			got[2] = w.F32()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 7 {
			t.Fatalf("receiver %d got %g", i, v)
		}
	}
}

func TestRouteValidation(t *testing.T) {
	f := newFabric(t, 2, 1)
	rt := f.PE(0, 0).Router()
	if err := rt.SetRoute(Color(40), 0, PortRamp, PortEast); err == nil {
		t.Error("color out of range accepted")
	}
	if err := rt.SetRoute(2, 3, PortRamp, PortEast); err == nil {
		t.Error("position out of range accepted")
	}
	if err := rt.SetRoute(2, 0, Port(9), PortEast); err == nil {
		t.Error("bad from-port accepted")
	}
	if err := rt.SetRoute(2, 0, PortRamp, PortWest); err == nil {
		t.Error("route across fabric edge accepted")
	}
	if err := rt.SetCommandColor(Color(99)); err == nil {
		t.Error("bad command color accepted")
	}
}

func TestMissingRouteIsAnError(t *testing.T) {
	f := newFabric(t, 2, 1)
	// No routes installed at all: sending must surface a routing error.
	err := f.Run(func(pe *PE) error {
		if pe.X == 0 {
			pe.Send(FromF32(3, 1))
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Fatalf("expected routing error, got %v", err)
	}
}

func TestWorkerErrorsAreCollected(t *testing.T) {
	f := newFabric(t, 2, 2)
	sentinel := errors.New("boom")
	err := f.Run(func(pe *PE) error {
		if pe.X == 1 && pe.Y == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("worker error lost: %v", err)
	}
}

func TestWorkerPanicsBecomeErrors(t *testing.T) {
	f := newFabric(t, 1, 1)
	err := f.Run(func(pe *PE) error {
		panic("kernel bug")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	f, err := New(Config{Width: 1, Height: 1, RecvTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	err = f.Run(func(pe *PE) error {
		_, err := pe.Recv()
		return err
	})
	if !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("want ErrRecvTimeout, got %v", err)
	}
}

func TestPEMemoryIsolated(t *testing.T) {
	f := newFabric(t, 2, 1)
	err := f.Run(func(pe *PE) error {
		d, err := pe.Mem.Alloc(4)
		if err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			pe.Mem.StoreHost(d, i, float32(pe.X+1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Memories must differ between PEs (same offsets, different contents).
	head := dsd.Desc{Base: 0, Len: 4, Stride: 1}
	da := f.PE(0, 0).Mem.ReadAll(head)
	db := f.PE(1, 0).Mem.ReadAll(head)
	if da[0] != 1 || db[0] != 2 {
		t.Errorf("PE memories shared or misloaded: %g %g", da[0], db[0])
	}
}
