package fabric

import (
	"fmt"
	"sync/atomic"
)

// RouteRule gives, for one color in one switch position, the set of output
// ports for a wavelet arriving on each input port. A nil entry means the
// color is not expected from that port (a routing error if it happens).
type RouteRule struct {
	out [NumPorts][]Port
}

// routeEntry is a color's routing state: two switch positions plus the
// active position (paper Fig. 6a: configuration 0 = sending/broadcast root,
// configuration 1 = receiving).
type routeEntry struct {
	rules [2]*RouteRule
	pos   uint8
}

// RouterCounters aggregates a router's traffic, updated atomically because
// the fabric sums them while routers may still run in other tests.
type RouterCounters struct {
	SentFromRamp   atomic.Uint64 // ramp → link
	DeliveredToPE  atomic.Uint64 // link → ramp
	Forwarded      atomic.Uint64 // link → link (multi-hop traffic)
	Commands       atomic.Uint64 // switch commands applied
	DroppedAtStop  atomic.Uint64 // wavelets discarded during shutdown drain
	LoopbackToRamp atomic.Uint64 // ramp → ramp (self-delivery, used by tests)
}

// router is one PE's five-port router. Route configuration happens before
// the fabric starts (static routes) and at runtime through command wavelets.
type router struct {
	pe       *PE
	entries  [MaxColors]*routeEntry
	cmd      Color // command color; wavelets of this color flip switches
	hasCmd   bool
	C        RouterCounters
	routeErr error
}

// SetRoute installs outputs for (color, position, from-port). It may only be
// called before the fabric runs.
func (r *router) SetRoute(c Color, pos uint8, from Port, to ...Port) error {
	if c >= MaxColors {
		return fmt.Errorf("fabric: color %d out of range (max %d)", c, MaxColors-1)
	}
	if pos > 1 {
		return fmt.Errorf("fabric: switch position %d out of range", pos)
	}
	if from >= NumPorts {
		return fmt.Errorf("fabric: invalid from-port %d", from)
	}
	for _, p := range to {
		if p >= NumPorts {
			return fmt.Errorf("fabric: invalid to-port %d", p)
		}
		if p != PortRamp && r.pe.link(p) == nil {
			return fmt.Errorf("fabric: PE(%d,%d) route %v→%v crosses the fabric edge", r.pe.X, r.pe.Y, from, p)
		}
	}
	e := r.entries[c]
	if e == nil {
		e = &routeEntry{}
		r.entries[c] = e
	}
	if e.rules[pos] == nil {
		e.rules[pos] = &RouteRule{}
	}
	if to == nil {
		to = []Port{} // "consume without forwarding" is a valid route
	}
	e.rules[pos].out[from] = to
	return nil
}

// SetCommandColor nominates the control color whose wavelets carry switch
// commands. Command wavelets are routed like data (so commands propagate
// along the same pattern) and then applied to this router.
func (r *router) SetCommandColor(c Color) error {
	if c >= MaxColors {
		return fmt.Errorf("fabric: command color %d out of range", c)
	}
	r.cmd = c
	r.hasCmd = true
	return nil
}

// Position returns the current switch position of a color (tests observe the
// Fig. 6 alternation through this).
func (r *router) Position(c Color) uint8 {
	if e := r.entries[c]; e != nil {
		return e.pos
	}
	return 0
}

// route processes one wavelet arriving on port from. It returns false when a
// routing error occurred (recorded in routeErr; the fabric surfaces it).
// Deliveries select on stop so a failed worker cannot wedge the fabric.
func (r *router) route(w Wavelet, from Port, stop <-chan struct{}) bool {
	if int(w.Color) >= len(r.entries) {
		r.fail(fmt.Errorf("fabric: PE(%d,%d) received wavelet with invalid color %d", r.pe.X, r.pe.Y, w.Color))
		return false
	}
	e := r.entries[w.Color]
	if e == nil {
		r.fail(fmt.Errorf("fabric: PE(%d,%d) has no route for color %d (from %v)", r.pe.X, r.pe.Y, w.Color, from))
		return false
	}
	rule := e.rules[e.pos]
	if rule == nil || rule.out[from] == nil {
		r.fail(fmt.Errorf("fabric: PE(%d,%d) color %d position %d has no route from %v", r.pe.X, r.pe.Y, w.Color, e.pos, from))
		return false
	}
	// Apply switch commands before forwarding: each router reconfigures as
	// the command passes through it (Fig. 6b), and the worker observing the
	// command (or its echo) is then guaranteed to see the new configuration.
	if r.hasCmd && w.Color == r.cmd {
		target, pos := DecodeCommand(w.Data)
		te := r.entries[target]
		switch {
		case te != nil && pos == TogglePosition:
			te.pos ^= 1
			r.C.Commands.Add(1)
		case te != nil && pos <= 1:
			te.pos = pos
			r.C.Commands.Add(1)
		default:
			r.fail(fmt.Errorf("fabric: PE(%d,%d) switch command for unknown color %d / position %d", r.pe.X, r.pe.Y, target, pos))
			return false
		}
	}
	for _, outPort := range rule.out[from] {
		var dst chan Wavelet
		switch {
		case outPort == PortRamp && from == PortRamp:
			r.C.LoopbackToRamp.Add(1)
			dst = r.pe.rampIn
		case outPort == PortRamp:
			r.C.DeliveredToPE.Add(1)
			dst = r.pe.rampIn
		case from == PortRamp:
			r.C.SentFromRamp.Add(1)
			dst = r.pe.link(outPort)
		default:
			r.C.Forwarded.Add(1)
			dst = r.pe.link(outPort)
		}
		select {
		case dst <- w:
		case <-stop:
			r.C.DroppedAtStop.Add(1)
			return true
		}
	}
	return true
}

func (r *router) fail(err error) {
	if r.routeErr == nil {
		r.routeErr = err
	}
}

// run is the router goroutine: it multiplexes the four fabric links and the
// worker's ramp-out until the fabric stops, then drains what remains.
func (r *router) run(stop <-chan struct{}) {
	in := r.pe.in
	rampOut := r.pe.rampOut
	open := 0
	for _, ch := range in {
		if ch != nil {
			open++
		}
	}
	rampOpen := true
	for rampOpen || open > 0 {
		select {
		case w, ok := <-rampOut:
			if !ok {
				rampOpen = false
				rampOut = nil
				continue
			}
			r.route(w, PortRamp, stop)
		case w, ok := <-in[PortNorth]:
			if !r.linkEvent(w, ok, PortNorth, &open, stop) {
				in[PortNorth] = nil
			}
		case w, ok := <-in[PortEast]:
			if !r.linkEvent(w, ok, PortEast, &open, stop) {
				in[PortEast] = nil
			}
		case w, ok := <-in[PortSouth]:
			if !r.linkEvent(w, ok, PortSouth, &open, stop) {
				in[PortSouth] = nil
			}
		case w, ok := <-in[PortWest]:
			if !r.linkEvent(w, ok, PortWest, &open, stop) {
				in[PortWest] = nil
			}
		case <-stop:
			// Workers have all finished (Run closes stop only after
			// workers.Wait()), so everything they sent is already buffered:
			// route those wavelets before draining, deterministically.
			r.flush(stop)
			r.drain()
			return
		}
	}
}

// flush routes whatever is already buffered on the ramp and the in-links at
// shutdown. Bounded so a pathological routing cycle cannot spin forever.
func (r *router) flush(stop <-chan struct{}) {
	const maxFlush = 1 << 20
	for n := 0; n < maxFlush; n++ {
		progressed := false
		select {
		case w, ok := <-r.pe.rampOut:
			if ok {
				r.route(w, PortRamp, stop)
				progressed = true
			}
		default:
		}
		for _, p := range LinkPorts {
			ch := r.pe.in[p]
			if ch == nil {
				continue
			}
			select {
			case w, ok := <-ch:
				if ok {
					r.route(w, p, stop)
					progressed = true
				}
			default:
			}
		}
		if !progressed {
			return
		}
	}
}

func (r *router) linkEvent(w Wavelet, ok bool, from Port, open *int, stop <-chan struct{}) bool {
	if !ok {
		*open--
		return false
	}
	r.route(w, from, stop)
	return true
}

// drain empties remaining input non-destructively at shutdown, counting
// stragglers: a correct protocol leaves zero wavelets in flight, and tests
// assert DroppedAtStop == 0.
func (r *router) drain() {
	for _, ch := range r.pe.in {
		if ch == nil {
			continue
		}
		for {
			select {
			case _, ok := <-ch:
				if !ok {
					goto next
				}
				r.C.DroppedAtStop.Add(1)
			default:
				goto next
			}
		}
	next:
	}
	for {
		select {
		case _, ok := <-r.pe.rampOut:
			if !ok {
				return
			}
			r.C.DroppedAtStop.Add(1)
		default:
			return
		}
	}
}
