// Package fabric simulates the wafer-scale engine's interconnect: a 2D mesh
// of processing elements (PEs), each with a private memory, a vector engine,
// and a five-port router (North, East, South, West, Ramp — paper Fig. 2).
// Data moves in 32-bit wavelets tagged with a color; routers forward wavelets
// according to per-color routing rules with two switch positions that runtime
// commands can flip (paper Fig. 6). Each PE runs two goroutines: its router
// and its worker program, connected by the ramp.
package fabric

import (
	"fmt"
	"math"
)

// Port identifies one of the router's five full-duplex links.
type Port uint8

const (
	PortNorth Port = iota
	PortEast
	PortSouth
	PortWest
	PortRamp
	NumPorts
)

var portNames = [NumPorts]string{"north", "east", "south", "west", "ramp"}

// String implements fmt.Stringer.
func (p Port) String() string {
	if p >= NumPorts {
		return fmt.Sprintf("Port(%d)", int(p))
	}
	return portNames[p]
}

// LinkPorts lists the four fabric-facing ports in a fixed order.
var LinkPorts = [4]Port{PortNorth, PortEast, PortSouth, PortWest}

// Opposite returns the port a wavelet sent out of p arrives on at the
// neighbor (north ↔ south, east ↔ west).
func (p Port) Opposite() Port {
	switch p {
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	default:
		panic(fmt.Sprintf("fabric: port %v has no opposite", p))
	}
}

// ClockwiseTurn returns the output port for a wavelet that arrived from
// input port `from` and must turn 90° clockwise — the diagonal-relay rule of
// §5.2.2: data from the West is forwarded South, from South → East, from
// East → North, from North → West. (Arrival "from West" means the wavelet
// travels eastbound; turning it to southbound is the clockwise rotation of
// the paper's Fig. 5.)
func (p Port) ClockwiseTurn() Port {
	switch p {
	case PortWest:
		return PortSouth
	case PortSouth:
		return PortEast
	case PortEast:
		return PortNorth
	case PortNorth:
		return PortWest
	default:
		panic(fmt.Sprintf("fabric: no clockwise turn for port %v", p))
	}
}

// Color tags a wavelet for routing, like the hardware's 24 routable colors.
type Color uint8

// MaxColors matches the WSE's routable color budget.
const MaxColors = 24

// Wavelet is the 32-bit fabric packet plus its color tag.
type Wavelet struct {
	Color Color
	Data  uint32
}

// F32 returns the payload interpreted as float32 (the flux kernel exchanges
// pressure and gravity coefficients as raw float bits).
func (w Wavelet) F32() float32 { return math.Float32frombits(w.Data) }

// FromF32 builds a data wavelet carrying a float32 payload.
func FromF32(c Color, v float32) Wavelet {
	return Wavelet{Color: c, Data: math.Float32bits(v)}
}

// Command wavelets: the payload of a control wavelet encodes which color's
// route to switch and the new switch position (paper Fig. 6: "a router
// command is sent through the broadcast pattern, changing the configurations
// from one to the alternative router configuration").

// TogglePosition, used as a command's newPos, flips the target color's route
// to the alternative configuration — the paper's switch semantic.
const TogglePosition uint8 = 0xFF

// EncodeCommand packs a switch command payload.
func EncodeCommand(target Color, newPos uint8) uint32 {
	return uint32(target) | uint32(newPos)<<8
}

// DecodeCommand unpacks a switch command payload.
func DecodeCommand(data uint32) (target Color, newPos uint8) {
	return Color(data & 0xFF), uint8((data >> 8) & 0xFF)
}
