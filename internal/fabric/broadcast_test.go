package fabric

import (
	"testing"
	"time"
)

func broadcastFabric(t *testing.T, w int) *Fabric {
	t.Helper()
	f, err := New(Config{Width: w, Height: 1, RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEastwardBroadcastEvenWidth(t *testing.T) {
	f := broadcastFabric(t, 6)
	values := []float32{10, 11, 12, 13, 14, 15}
	got, err := EastwardBroadcast(f, values)
	if err != nil {
		t.Fatal(err)
	}
	// Every PE except column 0 must hold its western neighbor's value
	// (paper Fig. 6b: "after two steps, all data have been sent and
	// received by all PEs").
	for x := 1; x < 6; x++ {
		if got[x] != values[x-1] {
			t.Errorf("PE %d received %g, want %g", x, got[x], values[x-1])
		}
	}
	if got[0] != 0 {
		t.Errorf("PE 0 has no western neighbor but received %g", got[0])
	}
}

func TestEastwardBroadcastOddWidth(t *testing.T) {
	f := broadcastFabric(t, 5)
	values := []float32{1, 2, 3, 4, 5}
	got, err := EastwardBroadcast(f, values)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x < 5; x++ {
		if got[x] != values[x-1] {
			t.Errorf("PE %d received %g, want %g", x, got[x], values[x-1])
		}
	}
}

func TestEastwardBroadcastSinglePE(t *testing.T) {
	f := broadcastFabric(t, 1)
	got, err := EastwardBroadcast(f, []float32{99})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("lone PE received %g", got[0])
	}
}

func TestEastwardBroadcastLengthMismatch(t *testing.T) {
	f := broadcastFabric(t, 4)
	if _, err := EastwardBroadcast(f, []float32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBroadcastUsesSwitchCommands(t *testing.T) {
	f := broadcastFabric(t, 4)
	if _, err := EastwardBroadcast(f, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	tot := f.Totals()
	if tot.Commands == 0 {
		t.Error("no switch commands were applied — the Fig. 6 mechanism was bypassed")
	}
	if tot.DroppedAtStop != 0 {
		t.Errorf("%d wavelets dropped at shutdown", tot.DroppedAtStop)
	}
}

func TestBroadcastTogglesRouterPositions(t *testing.T) {
	// After an even number of toggles every PE ends where it started, so
	// observe mid-protocol state instead: run a 2-PE exchange manually.
	f := broadcastFabric(t, 2)
	if err := ConfigureEastwardBroadcast(f, 0); err != nil {
		t.Fatal(err)
	}
	if pos := f.PE(0, 0).Router().Position(BroadcastDataColor); pos != 0 {
		t.Fatalf("PE0 starts at position %d, want 0 (sender)", pos)
	}
	if pos := f.PE(1, 0).Router().Position(BroadcastDataColor); pos != 1 {
		t.Fatalf("PE1 starts at position %d, want 1 (receiver)", pos)
	}
	err := f.Run(func(pe *PE) error {
		if pe.X == 0 {
			pe.Send(FromF32(BroadcastDataColor, 5))
			pe.Send(Wavelet{Color: BroadcastCmdColor, Data: EncodeCommand(BroadcastDataColor, TogglePosition)})
			return nil
		}
		if _, err := pe.Recv(); err != nil { // data
			return err
		}
		if _, err := pe.Recv(); err != nil { // command token
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// One toggle each: roles must have swapped.
	if pos := f.PE(0, 0).Router().Position(BroadcastDataColor); pos != 1 {
		t.Errorf("PE0 position after toggle = %d, want 1", pos)
	}
	if pos := f.PE(1, 0).Router().Position(BroadcastDataColor); pos != 0 {
		t.Errorf("PE1 position after toggle = %d, want 0", pos)
	}
}

func TestSetPositionValidation(t *testing.T) {
	f := broadcastFabric(t, 2)
	rt := f.PE(0, 0).Router()
	if err := rt.setPosition(BroadcastDataColor, 0); err == nil {
		t.Error("setPosition on unrouted color accepted")
	}
	if err := rt.SetRoute(BroadcastDataColor, 0, PortRamp, PortEast); err != nil {
		t.Fatal(err)
	}
	if err := rt.setPosition(BroadcastDataColor, 2); err == nil {
		t.Error("invalid position accepted")
	}
	if err := rt.setPosition(BroadcastDataColor, 1); err != nil {
		t.Error(err)
	}
	if rt.Position(BroadcastDataColor) != 1 {
		t.Error("position not set")
	}
}

func TestUnknownCommandTargetIsError(t *testing.T) {
	f := broadcastFabric(t, 1)
	rt := f.PE(0, 0).Router()
	if err := rt.SetCommandColor(BroadcastCmdColor); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetRoute(BroadcastCmdColor, 0, PortRamp); err != nil {
		t.Fatal(err)
	}
	err := f.Run(func(pe *PE) error {
		pe.Send(Wavelet{Color: BroadcastCmdColor, Data: EncodeCommand(Color(13), 0)})
		return nil
	})
	if err == nil {
		t.Error("command for unrouted color did not error")
	}
}
