package fabric

import (
	"fmt"
	"sync"
)

// This file implements the paper's Fig. 6 scenario: the eastward localized
// broadcast used to exchange cell values along the X dimension with a single
// data color, alternating each PE between Sending (router configuration 0:
// ramp → east) and Receiving (configuration 1: west → ramp) via switch
// commands that travel through the same pattern.
//
// Protocol (two steps, Fig. 6b):
//
//	step 1: even-column PEs are Senders, odd-column PEs are Receivers.
//	        Each Sender emits its value eastward, then a toggle command.
//	        The command reconfigures the data color at the Sender (observed
//	        through a ramp echo) and at its eastern neighbor on arrival,
//	        exchanging the two roles.
//	step 2: the former Receivers, now Senders, emit their values eastward.
//
// After both steps every PE except column 0 holds its western neighbor's
// value — with only one data color and no per-PE route tables.
//
// On hardware, signal propagation makes step 2 data physically arrive after
// the step 1 switch commands. The simulator has no propagation delay, so the
// demo inserts a worker barrier between the steps; the command echo
// guarantees each router applied its own switch before its worker passes the
// barrier.

const (
	// BroadcastDataColor carries cell values in the Fig. 6 demo.
	BroadcastDataColor Color = 0
	// BroadcastCmdColor carries the switch commands.
	BroadcastCmdColor Color = 1
)

// ConfigureEastwardBroadcast installs the Fig. 6 routes on a fabric row:
// data color position 0 routes ramp→east (Sender), position 1 routes
// west→ramp (Receiver); the command color travels ramp→{east, ramp-echo} and
// west→ramp in both positions. Even columns start at position 0, odd at 1.
func ConfigureEastwardBroadcast(f *Fabric, row int) error {
	for x := 0; x < f.Width(); x++ {
		pe := f.PE(x, row)
		rt := pe.Router()
		if err := rt.SetCommandColor(BroadcastCmdColor); err != nil {
			return err
		}
		// Sender configuration (position 0): local value flows east (or is
		// consumed at the wafer edge).
		east := []Port{}
		if pe.HasNeighbor(PortEast) {
			east = []Port{PortEast}
		}
		if err := rt.SetRoute(BroadcastDataColor, 0, PortRamp, east...); err != nil {
			return err
		}
		// Receiver configuration (position 1): western data reaches the PE.
		if err := rt.SetRoute(BroadcastDataColor, 1, PortWest, PortRamp); err != nil {
			return err
		}
		// Command color: east + local echo from the ramp; consumed (and
		// applied) when arriving from the west. Same in both positions.
		cmdOut := append(append([]Port{}, east...), PortRamp)
		for pos := uint8(0); pos <= 1; pos++ {
			if err := rt.SetRoute(BroadcastCmdColor, pos, PortRamp, cmdOut...); err != nil {
				return err
			}
			if err := rt.SetRoute(BroadcastCmdColor, pos, PortWest, PortRamp); err != nil {
				return err
			}
		}
		if x%2 == 1 {
			if err := rt.setPosition(BroadcastDataColor, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// EastwardBroadcast runs the two-step Fig. 6 exchange on row 0 of a W×1
// fabric: PE x contributes values[x]; the returned slice holds, at index x,
// the value received from the western neighbor (index 0 stays zero).
func EastwardBroadcast(f *Fabric, values []float32) ([]float32, error) {
	if len(values) != f.Width() {
		return nil, fmt.Errorf("fabric: need %d values for width-%d fabric, got %d", f.Width(), f.Width(), len(values))
	}
	if err := ConfigureEastwardBroadcast(f, 0); err != nil {
		return nil, err
	}
	received := make([]float32, f.Width())
	bar := newBarrier(f.Width())
	err := f.Run(func(pe *PE) error {
		sender := pe.X%2 == 0
		for step := 0; step < 2; step++ {
			if sender {
				if pe.HasNeighbor(PortEast) {
					pe.Send(FromF32(BroadcastDataColor, values[pe.X]))
				}
				// Toggle self and eastern neighbor; wait for the echo so the
				// local router has provably switched.
				pe.Send(Wavelet{Color: BroadcastCmdColor, Data: EncodeCommand(BroadcastDataColor, TogglePosition)})
				echo, err := pe.Recv()
				if err != nil {
					return fmt.Errorf("step %d echo: %w", step, err)
				}
				if echo.Color != BroadcastCmdColor {
					return fmt.Errorf("step %d: expected command echo, got color %d", step, echo.Color)
				}
			} else if pe.HasNeighbor(PortWest) {
				w, err := pe.Recv()
				if err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
				if w.Color != BroadcastDataColor {
					return fmt.Errorf("step %d: expected data wavelet, got color %d", step, w.Color)
				}
				received[pe.X] = w.F32()
				// The neighbor's command follows the data on the same link.
				c, err := pe.Recv()
				if err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
				if c.Color != BroadcastCmdColor {
					return fmt.Errorf("step %d: expected command wavelet, got color %d", step, c.Color)
				}
			}
			bar.await()
			sender = !sender
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return received, nil
}

// barrier is a reusable cyclic barrier for the fabric's worker goroutines.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties have arrived, then releases the generation.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// setPosition force-sets a color's switch position during configuration
// (initial role assignment; runtime changes go through command wavelets).
func (r *router) setPosition(c Color, pos uint8) error {
	if c >= MaxColors || r.entries[c] == nil {
		return fmt.Errorf("fabric: cannot set position of unrouted color %d", c)
	}
	if pos > 1 {
		return fmt.Errorf("fabric: invalid position %d", pos)
	}
	r.entries[c].pos = pos
	return nil
}
