package gpusim

import (
	"math"
	"testing"
)

func TestA100Spec(t *testing.T) {
	s := A100()
	if s.SMs != 108 || s.WarpSize != 32 || s.MaxThreadsPerBlock != 1024 {
		t.Errorf("A100 core spec wrong: %+v", s)
	}
	if s.MemBytes != 40*1024*1024*1024 {
		t.Errorf("A100 memory = %d, want 40 GiB (§7.1)", s.MemBytes)
	}
	if s.PowerWatts != 250 {
		t.Errorf("A100 power = %g, want 250 W (§7.2)", s.PowerWatts)
	}
}

func TestMallocAccounting(t *testing.T) {
	d := NewDevice(A100())
	b, err := d.Malloc("a", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1000 || d.AllocatedBytes() != 4000 {
		t.Errorf("allocation bookkeeping wrong: len=%d bytes=%d", b.Len(), d.AllocatedBytes())
	}
	if _, err := d.Malloc("zero", 0); err == nil {
		t.Error("zero allocation accepted")
	}
}

func TestMallocOutOfMemory(t *testing.T) {
	spec := A100()
	spec.MemBytes = 4000
	d := NewDevice(spec)
	if _, err := d.Malloc("big", 1001); err == nil {
		t.Error("over-allocation accepted")
	}
	if _, err := d.Malloc("fits", 1000); err != nil {
		t.Errorf("exact-fit allocation rejected: %v", err)
	}
	if _, err := d.Malloc("one-more", 1); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
}

func TestMemcpyRoundTrip(t *testing.T) {
	d := NewDevice(A100())
	b, _ := d.Malloc("x", 4)
	if err := d.CopyToDevice(b, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got := d.CopyToHost(b)
	for i, want := range []float32{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("readback[%d] = %g", i, got[i])
		}
	}
	if d.HostToDeviceBytes != 16 || d.DeviceToHostBytes != 16 {
		t.Errorf("memcpy counters %d/%d", d.HostToDeviceBytes, d.DeviceToHostBytes)
	}
	if err := d.CopyToDevice(b, []float32{1}); err == nil {
		t.Error("length-mismatched H2D accepted")
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDevice(A100())
	if _, err := d.Launch(Dim3{0, 1, 1}, Dim3{1, 1, 1}, func(*ThreadCtx) {}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := d.Launch(Dim3{1, 1, 1}, Dim3{32, 32, 2}, func(*ThreadCtx) {}); err == nil {
		t.Error("2048-thread block accepted (limit is 1024, §6)")
	}
}

func TestLaunchCoversAllThreads(t *testing.T) {
	d := NewDevice(A100())
	buf, _ := d.Malloc("out", 4*3*2*2*2*2)
	grid := Dim3{X: 4, Y: 3, Z: 2}
	block := Dim3{X: 2, Y: 2, Z: 2}
	st, err := d.Launch(grid, block, func(tc *ThreadCtx) {
		gx := tc.BlockIdx.X*tc.BlockDim.X + tc.ThreadIdx.X
		gy := tc.BlockIdx.Y*tc.BlockDim.Y + tc.ThreadIdx.Y
		gz := tc.BlockIdx.Z*tc.BlockDim.Z + tc.ThreadIdx.Z
		nx := grid.X * block.X
		ny := grid.Y * block.Y
		idx := (gz*ny+gy)*nx + gx
		tc.Store(buf, idx, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(grid.Count() * block.Count())
	if st.ThreadsLaunched != want || st.ThreadsActive != want {
		t.Errorf("threads launched/active = %d/%d, want %d", st.ThreadsLaunched, st.ThreadsActive, want)
	}
	out := d.CopyToHost(buf)
	for i, v := range out {
		if v != 1 {
			t.Fatalf("thread for index %d never ran", i)
		}
	}
	if st.StoreWords != want {
		t.Errorf("stores = %d, want %d", st.StoreWords, want)
	}
	if st.Blocks != uint64(grid.Count()) {
		t.Errorf("blocks = %d, want %d", st.Blocks, grid.Count())
	}
}

func TestEarlyReturnCountsInactive(t *testing.T) {
	d := NewDevice(A100())
	st, err := d.Launch(Dim3{1, 1, 1}, Dim3{8, 1, 1}, func(tc *ThreadCtx) {
		if tc.ThreadIdx.X >= 5 {
			tc.Return()
			return
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ThreadsLaunched != 8 || st.ThreadsActive != 5 {
		t.Errorf("launched/active = %d/%d, want 8/5", st.ThreadsLaunched, st.ThreadsActive)
	}
}

func TestArithmeticCounting(t *testing.T) {
	d := NewDevice(A100())
	st, err := d.Launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, func(tc *ThreadCtx) {
		v := tc.Mul(2, 3)   // 1
		v = tc.Add(v, 1)    // 1
		v = tc.Sub(v, 2)    // 1
		v = tc.Sel(v, 1, 0) // 1
		v = tc.Exp(v)       // ExpFlopCost
		_ = v
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(4 + ExpFlopCost)
	if st.Flops != want {
		t.Errorf("flops = %d, want %d", st.Flops, want)
	}
	if st.ExpCalls != 1 {
		t.Errorf("exp calls = %d, want 1", st.ExpCalls)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	d := NewDevice(A100())
	var got [5]float32
	_, err := d.Launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, func(tc *ThreadCtx) {
		got[0] = tc.Mul(3, 4)
		got[1] = tc.Add(3, 4)
		got[2] = tc.Sub(3, 4)
		got[3] = tc.Sel(-1, 10, 20)
		got[4] = tc.Exp(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 12 || got[1] != 7 || got[2] != -1 || got[3] != 20 {
		t.Errorf("arithmetic wrong: %v", got)
	}
	if math.Abs(float64(got[4])-math.E) > 1e-6 {
		t.Errorf("exp(1) = %g", got[4])
	}
}

func TestSelZeroTakesElse(t *testing.T) {
	d := NewDevice(A100())
	var got float32
	d.Launch(Dim3{1, 1, 1}, Dim3{1, 1, 1}, func(tc *ThreadCtx) {
		got = tc.Sel(0, 10, 20)
	})
	if got != 20 {
		t.Errorf("Sel(0,...) = %g, want the else branch (Eq. 4 'otherwise')", got)
	}
}

func TestOccupancyModel(t *testing.T) {
	d := NewDevice(A100())
	occ := d.OccupancyFor(Dim3{X: 16, Y: 8, Z: 8})
	// 1024-thread blocks = 32 warps; 1 resident block → 32/64 = 50 %
	// theoretical; 48.11 % and 30.79 warps achieved (§7.2).
	if occ.TheoreticalWarpsPerSM != 32 {
		t.Errorf("theoretical warps = %g, want 32", occ.TheoreticalWarpsPerSM)
	}
	if occ.TheoreticalFraction != 0.5 {
		t.Errorf("theoretical occupancy = %g, want 0.5", occ.TheoreticalFraction)
	}
	if math.Abs(occ.AchievedWarpsPerSM-30.79) > 0.01 {
		t.Errorf("achieved warps = %.2f, want 30.79", occ.AchievedWarpsPerSM)
	}
	if math.Abs(occ.AchievedFraction-0.4811) > 0.0001 {
		t.Errorf("achieved occupancy = %.4f, want 0.4811", occ.AchievedFraction)
	}
}

func TestKernelStatsHelpers(t *testing.T) {
	st := KernelStats{Flops: 280, LoadWords: 32, StoreWords: 1}
	if st.Bytes() != 132 {
		t.Errorf("bytes = %d, want 132", st.Bytes())
	}
	if ai := st.ArithmeticIntensity(); math.Abs(ai-2.1212) > 0.001 {
		t.Errorf("AI = %g, want ~2.12", ai)
	}
	var zero KernelStats
	if zero.ArithmeticIntensity() != 0 {
		t.Error("zero stats should have zero AI")
	}
	sum := KernelStats{}
	sum.Add(&st)
	sum.Add(&st)
	if sum.Flops != 560 || sum.LoadWords != 64 {
		t.Errorf("Add wrong: %+v", sum)
	}
}

func TestBufferMutate(t *testing.T) {
	d := NewDevice(A100())
	b, _ := d.Malloc("x", 3)
	d.CopyToDevice(b, []float32{1, 2, 3})
	h2d := d.HostToDeviceBytes
	b.Mutate(func(data []float32) {
		for i := range data {
			data[i] *= 10
		}
	})
	if d.HostToDeviceBytes != h2d {
		t.Error("Mutate counted as H2D traffic")
	}
	if got := d.CopyToHost(b); got[2] != 30 {
		t.Errorf("mutate lost: %v", got)
	}
}
