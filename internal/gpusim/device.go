// Package gpusim is a functional GPU execution simulator standing in for the
// paper's NVIDIA A100 (§6–7): device memory with explicit host↔device
// copies, dim3 grid/block kernel launches executed on a host worker pool,
// per-thread arithmetic with FLOP and memory-traffic counters, and an
// occupancy model. The RAJA-style and CUDA-style flux kernels in
// internal/kernels run on it; internal/perfmodel converts its counters into
// projected A100 wall-clock.
package gpusim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/units"
)

// Dim3 is the CUDA-style 3-component extent.
type Dim3 struct{ X, Y, Z int }

// Count returns X·Y·Z.
func (d Dim3) Count() int { return d.X * d.Y * d.Z }

func (d Dim3) valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// DeviceSpec captures the hardware characteristics the experiments need.
type DeviceSpec struct {
	Name               string
	SMs                int     // streaming multiprocessors
	WarpSize           int     // threads per warp
	MaxThreadsPerBlock int     // CUDA limit (1024, §6)
	MaxWarpsPerSM      int     // architectural warp slots per SM
	ResidentBlocksWave int     // blocks resident per SM for this kernel's register budget
	ClockHz            float64 // boost clock
	PeakFP32           float64 // FLOP/s
	MemBytes           int64   // device memory (40 GB, §7.1)
	// ERTBandwidth is the streaming bandwidth an Empirical-Roofline-Toolkit
	// sweep measures on this device (word-level traffic; see
	// internal/roofline). Calibrated so the RAJA kernel's achieved fraction
	// matches the paper's 76 % (§7.3).
	ERTBandwidth float64
	PowerWatts   float64 // peak board power under this workload (§7.2)
}

// A100 returns the evaluation GPU of §7.1.
func A100() DeviceSpec {
	return DeviceSpec{
		Name:               "NVIDIA A100-40GB",
		SMs:                108,
		WarpSize:           32,
		MaxThreadsPerBlock: 1024,
		MaxWarpsPerSM:      64,
		ResidentBlocksWave: 1, // 1024-thread blocks with this register budget
		ClockHz:            1.41e9,
		PeakFP32:           19.5e12,
		MemBytes:           40 * units.GiB,
		ERTBandwidth:       1.891e12,
		PowerWatts:         250,
	}
}

// Buffer is a device-memory allocation of float32 words.
type Buffer struct {
	data []float32
	name string
}

// Len returns the buffer length in words.
func (b *Buffer) Len() int { return len(b.data) }

// Mutate lets the host rewrite buffer contents in place (the analog of the
// host preparing the next input vector; not counted as kernel traffic).
// It must not race with a running Launch.
func (b *Buffer) Mutate(f func(data []float32)) { f(b.data) }

// Device is one simulated GPU.
type Device struct {
	Spec DeviceSpec

	allocated int64
	buffers   []*Buffer

	HostToDeviceBytes uint64
	DeviceToHostBytes uint64

	Workers int // host worker pool size for Launch (default NumCPU)
}

// NewDevice creates a device with empty memory.
func NewDevice(spec DeviceSpec) *Device { return &Device{Spec: spec} }

// Malloc allocates a named device buffer of n float32 words.
func (d *Device) Malloc(name string, n int) (*Buffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpusim: allocation %q must be positive, got %d", name, n)
	}
	bytes := int64(n) * 4
	if d.allocated+bytes > d.Spec.MemBytes {
		return nil, fmt.Errorf("gpusim: out of device memory allocating %q: %d + %d > %d bytes",
			name, d.allocated, bytes, d.Spec.MemBytes)
	}
	d.allocated += bytes
	b := &Buffer{data: make([]float32, n), name: name}
	d.buffers = append(d.buffers, b)
	return b, nil
}

// AllocatedBytes returns the current device-memory footprint.
func (d *Device) AllocatedBytes() int64 { return d.allocated }

// CopyToDevice is the cudaMemcpy H2D analog.
func (d *Device) CopyToDevice(dst *Buffer, src []float32) error {
	if len(src) != len(dst.data) {
		return fmt.Errorf("gpusim: H2D copy to %q: %d words into %d", dst.name, len(src), len(dst.data))
	}
	copy(dst.data, src)
	d.HostToDeviceBytes += uint64(4 * len(src))
	return nil
}

// CopyToHost is the cudaMemcpy D2H analog.
func (d *Device) CopyToHost(src *Buffer) []float32 {
	out := make([]float32, len(src.data))
	copy(out, src.data)
	d.DeviceToHostBytes += uint64(4 * len(out))
	return out
}

// KernelStats aggregates one launch's execution counters.
type KernelStats struct {
	Grid, Block     Dim3
	ThreadsLaunched uint64
	ThreadsActive   uint64 // threads that did not early-return
	Flops           uint64
	ExpCalls        uint64
	LoadWords       uint64
	StoreWords      uint64
	Blocks          uint64
}

// Bytes returns the word-level memory traffic in bytes.
func (k *KernelStats) Bytes() uint64 { return 4 * (k.LoadWords + k.StoreWords) }

// ArithmeticIntensity returns FLOPs per byte of word-level traffic — the
// quantity Nsight reports and Fig. 8 (bottom) plots (paper: 2.11).
func (k *KernelStats) ArithmeticIntensity() float64 {
	if b := k.Bytes(); b > 0 {
		return float64(k.Flops) / float64(b)
	}
	return 0
}

// Add accumulates other into k (used to sum stats across launches).
func (k *KernelStats) Add(o *KernelStats) {
	k.ThreadsLaunched += o.ThreadsLaunched
	k.ThreadsActive += o.ThreadsActive
	k.Flops += o.Flops
	k.ExpCalls += o.ExpCalls
	k.LoadWords += o.LoadWords
	k.StoreWords += o.StoreWords
	k.Blocks += o.Blocks
}

// Occupancy reports the §7.2 occupancy characteristics for a launch of the
// given block size: warps per SM and occupancy fraction, with the calibrated
// warp-efficiency factor accounting for launch/drain overheads (paper: 30.79
// of 32 warps, 48.11 % of the 50 % theoretical bound).
type Occupancy struct {
	TheoreticalWarpsPerSM float64
	AchievedWarpsPerSM    float64
	TheoreticalFraction   float64
	AchievedFraction      float64
}

// warpEfficiency is the calibrated active-warp fraction (30.79/32).
const warpEfficiency = 0.9622

// OccupancyFor models a launch with the given block size.
func (d *Device) OccupancyFor(block Dim3) Occupancy {
	warpsPerBlock := float64(block.Count()) / float64(d.Spec.WarpSize)
	theoWarps := warpsPerBlock * float64(d.Spec.ResidentBlocksWave)
	occ := Occupancy{
		TheoreticalWarpsPerSM: theoWarps,
		AchievedWarpsPerSM:    theoWarps * warpEfficiency,
		TheoreticalFraction:   theoWarps / float64(d.Spec.MaxWarpsPerSM),
	}
	occ.AchievedFraction = occ.TheoreticalFraction * warpEfficiency
	return occ
}

// ThreadCtx is a kernel thread's view: indices plus counted arithmetic and
// memory accessors. All counting flows through this type, so the stats are
// measurements of the kernel as written, not assumptions.
type ThreadCtx struct {
	BlockIdx  Dim3
	ThreadIdx Dim3
	BlockDim  Dim3
	GridDim   Dim3

	active bool
	c      *KernelStats // per-worker, merged at the end
}

// Return marks the thread as early-returned (the CUDA variant's boundary
// guard); inactive threads are excluded from ThreadsActive.
func (t *ThreadCtx) Return() { t.active = false }

// Load reads one word from a device buffer (counted).
func (t *ThreadCtx) Load(b *Buffer, idx int) float32 {
	t.c.LoadWords++
	return b.data[idx]
}

// Store writes one word to a device buffer (counted).
func (t *ThreadCtx) Store(b *Buffer, idx int, v float32) {
	t.c.StoreWords++
	b.data[idx] = v
}

// Arithmetic: each helper counts its FLOP cost. Mul/Add/Sub count 1;
// Sel (the predicated upwind select, lowered to a conditional move) counts 1,
// matching profiler conventions; Exp counts ExpFlopCost (the SFU's
// range-reduction + polynomial sequence as FLOP-equivalents).

// ExpFlopCost is the FLOP-equivalent cost of one expf on the device.
const ExpFlopCost = 6

// Mul returns a·b.
func (t *ThreadCtx) Mul(a, b float32) float32 { t.c.Flops++; return a * b }

// Add returns a+b.
func (t *ThreadCtx) Add(a, b float32) float32 { t.c.Flops++; return a + b }

// Sub returns a−b.
func (t *ThreadCtx) Sub(a, b float32) float32 { t.c.Flops++; return a - b }

// Sel returns a when cond > 0, else b (predicated select, 1 FLOP).
func (t *ThreadCtx) Sel(cond, a, b float32) float32 {
	t.c.Flops++
	if cond > 0 {
		return a
	}
	return b
}

// Exp returns expf(x).
func (t *ThreadCtx) Exp(x float32) float32 {
	t.c.Flops += ExpFlopCost
	t.c.ExpCalls++
	return float32(math.Exp(float64(x)))
}

// Kernel is a device function invoked once per thread.
type Kernel func(t *ThreadCtx)

// Launch executes kernel over grid×block threads. Blocks are distributed
// over a host worker pool (the SM analog); threads within a block run
// sequentially. Returns the launch's measured stats.
func (d *Device) Launch(grid, block Dim3, kernel Kernel) (*KernelStats, error) {
	if !grid.valid() || !block.valid() {
		return nil, fmt.Errorf("gpusim: invalid launch configuration grid=%+v block=%+v", grid, block)
	}
	if block.Count() > d.Spec.MaxThreadsPerBlock {
		return nil, fmt.Errorf("gpusim: block of %d threads exceeds the %d-thread limit",
			block.Count(), d.Spec.MaxThreadsPerBlock)
	}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nBlocks := grid.Count()
	if workers > nBlocks {
		workers = nBlocks
	}

	stats := &KernelStats{Grid: grid, Block: block, Blocks: uint64(nBlocks)}
	perWorker := make([]KernelStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := &perWorker[w]
			tc := ThreadCtx{BlockDim: block, GridDim: grid, c: local}
			for b := w; b < nBlocks; b += workers {
				bz := b / (grid.X * grid.Y)
				by := (b / grid.X) % grid.Y
				bx := b % grid.X
				tc.BlockIdx = Dim3{X: bx, Y: by, Z: bz}
				for tz := 0; tz < block.Z; tz++ {
					for ty := 0; ty < block.Y; ty++ {
						for tx := 0; tx < block.X; tx++ {
							tc.ThreadIdx = Dim3{X: tx, Y: ty, Z: tz}
							tc.active = true
							local.ThreadsLaunched++
							kernel(&tc)
							if tc.active {
								local.ThreadsActive++
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range perWorker {
		stats.ThreadsLaunched += perWorker[w].ThreadsLaunched
		stats.ThreadsActive += perWorker[w].ThreadsActive
		stats.Flops += perWorker[w].Flops
		stats.ExpCalls += perWorker[w].ExpCalls
		stats.LoadWords += perWorker[w].LoadWords
		stats.StoreWords += perWorker[w].StoreWords
	}
	return stats, nil
}
