package wave

import (
	"math"
	"strings"
	"testing"
)

func testMedium(t *testing.T, nx, ny int, theta float64) *Medium {
	t.Helper()
	m, err := NewUniformMedium(nx, ny, 10, 2000, 1400, theta)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testOptions(m *Medium, steps int) Options {
	return Options{
		Dt:     0.8 * m.MaxStableDt(),
		Steps:  steps,
		Source: Source{X: m.Nx / 2, Y: m.Ny / 2, Freq: 12, Amp: 1},
	}
}

func TestNewUniformMediumValidation(t *testing.T) {
	if _, err := NewUniformMedium(2, 5, 10, 2000, 1400, 0); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := NewUniformMedium(5, 5, 0, 2000, 1400, 0); err == nil {
		t.Error("zero dx accepted")
	}
	if _, err := NewUniformMedium(5, 5, 10, 1400, 2000, 0); err == nil {
		t.Error("vSlow > vFast accepted")
	}
}

func TestCFLValidation(t *testing.T) {
	m := testMedium(t, 16, 16, 0)
	opts := testOptions(m, 10)
	opts.Dt = 1.5 * m.MaxStableDt()
	if _, err := Simulate(m, opts); err == nil || !strings.Contains(err.Error(), "CFL") {
		t.Errorf("CFL violation not rejected: %v", err)
	}
	opts.Dt = 0
	if _, err := Simulate(m, opts); err == nil {
		t.Error("zero dt accepted")
	}
}

func TestSourceValidation(t *testing.T) {
	m := testMedium(t, 16, 16, 0)
	opts := testOptions(m, 10)
	opts.Source.X = 0 // boundary
	if _, err := Simulate(m, opts); err == nil {
		t.Error("boundary source accepted")
	}
	opts = testOptions(m, 10)
	opts.Source.Freq = 0
	if _, err := Simulate(m, opts); err == nil {
		t.Error("zero frequency accepted")
	}
	opts = testOptions(m, 0)
	if _, err := Simulate(m, opts); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestRickerShape(t *testing.T) {
	s := Source{Freq: 10, Amp: 2}
	// Peak amplitude at the delay time.
	if got := s.Ricker(1.2 / 10); math.Abs(got-2) > 1e-12 {
		t.Errorf("peak = %g, want 2", got)
	}
	// Decays to ~0 far from the peak.
	if got := s.Ricker(1.0); math.Abs(got) > 1e-6 {
		t.Errorf("tail = %g, want ≈0", got)
	}
}

func TestWavePropagates(t *testing.T) {
	m := testMedium(t, 32, 32, 0)
	res, err := Simulate(m, testOptions(m, 60))
	if err != nil {
		t.Fatal(err)
	}
	// The field is non-trivial and reached cells away from the source.
	if res.MaxAbs[len(res.MaxAbs)-1] == 0 {
		t.Fatal("wavefield is identically zero")
	}
	far := res.U[m.Index(m.Nx/2+10, m.Ny/2)]
	if far == 0 {
		t.Error("wave did not reach 10 cells from the source")
	}
}

func TestStabilityUnderCFL(t *testing.T) {
	// Long run at 0.8 CFL: the leapfrog field stays bounded.
	m := testMedium(t, 24, 24, 0.5)
	res, err := Simulate(m, testOptions(m, 400))
	if err != nil {
		t.Fatal(err)
	}
	peak := float32(0)
	for _, v := range res.MaxAbs {
		if v > peak {
			peak = v
		}
	}
	if last := res.MaxAbs[len(res.MaxAbs)-1]; last > 3*peak || last > 1e6 {
		t.Errorf("field growing: last %g vs peak %g", last, peak)
	}
}

func TestIsotropicSymmetry(t *testing.T) {
	// Isotropic medium (vFast = vSlow): the cross coefficient vanishes and
	// the wavefield is 4-fold symmetric about a centered source.
	m, err := NewUniformMedium(33, 33, 10, 1800, 1800, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(m, 50)
	opts.Source = Source{X: 16, Y: 16, Freq: 12, Amp: 1}
	res, err := Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for d := 1; d <= 10; d++ {
		e := float64(res.U[m.Index(16+d, 16)])
		w := float64(res.U[m.Index(16-d, 16)])
		n := float64(res.U[m.Index(16, 16-d)])
		s := float64(res.U[m.Index(16, 16+d)])
		for _, v := range []float64{w, n, s} {
			if diff := math.Abs(e - v); diff > worst {
				worst = diff
			}
		}
	}
	scale := float64(res.MaxAbs[len(res.MaxAbs)-1])
	if worst > 1e-5*scale {
		t.Errorf("isotropic field asymmetric: worst %g vs scale %g", worst, scale)
	}
}

func TestTTIAnisotropyBreaksSymmetry(t *testing.T) {
	// A tilted anisotropic medium must produce different E-W vs N-S arrival
	// patterns — the reason diagonal neighbors are needed at all.
	m := testMedium(t, 33, 33, math.Pi/6)
	opts := testOptions(m, 60)
	opts.Source = Source{X: 16, Y: 16, Freq: 12, Amp: 1}
	res, err := Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := 8
	e := res.U[m.Index(16+d, 16)]
	n := res.U[m.Index(16, 16-d)]
	scale := res.MaxAbs[len(res.MaxAbs)-1]
	if diff := math.Abs(float64(e - n)); diff < 1e-4*float64(scale) {
		t.Errorf("tilted TI field looks isotropic: |E−N| = %g", diff)
	}
}

func TestCrossTermZeroWhenUntilted(t *testing.T) {
	m := testMedium(t, 8, 8, 0)
	_, _, c := m.coefficients(1e-3)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("untilted cross coefficient c[%d] = %g, want 0", i, v)
		}
	}
	// Isotropic but tilted: also zero.
	iso, _ := NewUniformMedium(8, 8, 10, 1500, 1500, 0.9)
	_, _, c = iso.coefficients(1e-3)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("isotropic cross coefficient c[%d] = %g, want 0", i, v)
		}
	}
}

func TestFabricMatchesHostBitExact(t *testing.T) {
	// The paper's diagonal exchange carries the TTI cross term: the fabric
	// engine must reproduce the host engine exactly.
	m := testMedium(t, 12, 10, math.Pi/5)
	opts := testOptions(m, 25)
	opts.Source = Source{X: 5, Y: 4, Freq: 15, Amp: 1}
	host, err := Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.UseFabric = true
	fab, err := Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fab.Engine != "fabric" || host.Engine != "host" {
		t.Fatal("engine labels wrong")
	}
	for i := range host.U {
		if host.U[i] != fab.U[i] {
			t.Fatalf("wavefield differs at %d: host %g vs fabric %g", i, host.U[i], fab.U[i])
		}
	}
	for s := range host.MaxAbs {
		if host.MaxAbs[s] != fab.MaxAbs[s] {
			t.Fatalf("MaxAbs differs at step %d", s)
		}
	}
}

func TestFloat32TracksFloat64(t *testing.T) {
	m := testMedium(t, 20, 20, 0.4)
	opts := testOptions(m, 40)
	res, err := Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SimulateReference(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for _, v := range ref {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		t.Fatal("reference field zero")
	}
	for i := range ref {
		if diff := math.Abs(float64(res.U[i]) - ref[i]); diff > 1e-4*scale {
			t.Fatalf("float32 drifted at %d: %g vs %g", i, res.U[i], ref[i])
		}
	}
}

func TestBoundariesStayZero(t *testing.T) {
	m := testMedium(t, 16, 14, 0.3)
	res, err := Simulate(m, testOptions(m, 30))
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < m.Nx; x++ {
		if res.U[m.Index(x, 0)] != 0 || res.U[m.Index(x, m.Ny-1)] != 0 {
			t.Fatal("top/bottom boundary not held at zero")
		}
	}
	for y := 0; y < m.Ny; y++ {
		if res.U[m.Index(0, y)] != 0 || res.U[m.Index(m.Nx-1, y)] != 0 {
			t.Fatal("left/right boundary not held at zero")
		}
	}
}

func TestMaxStableDt(t *testing.T) {
	m := testMedium(t, 8, 8, 0)
	want := 10.0 / (2000 * math.Sqrt2)
	if got := m.MaxStableDt(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxStableDt = %g, want %g", got, want)
	}
}
