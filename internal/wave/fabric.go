package wave

import (
	"fmt"

	"repro/internal/fabric"
)

// The fabric engine: one grid cell per PE, the same cardinal +
// clockwise-relayed diagonal exchange the flux kernel uses (§5.2), one
// wavelet per direction per time step. Boundary PEs hold the Dirichlet
// zero and still broadcast, so interior stencils always see eight values.

// Wave colors mirror the flux engine's static scheme: one per arrival
// direction and hop kind.
const (
	wColorCardFromW fabric.Color = 2 + iota
	wColorCardFromE
	wColorCardFromN
	wColorCardFromS
	wColorDiagFromN
	wColorDiagFromE
	wColorDiagFromS
	wColorDiagFromW
)

func wCardColor(p fabric.Port) fabric.Color {
	switch p {
	case fabric.PortWest:
		return wColorCardFromW
	case fabric.PortEast:
		return wColorCardFromE
	case fabric.PortNorth:
		return wColorCardFromN
	case fabric.PortSouth:
		return wColorCardFromS
	default:
		panic(fmt.Sprintf("wave: no cardinal color for %v", p))
	}
}

func wDiagColor(p fabric.Port) fabric.Color {
	switch p {
	case fabric.PortNorth:
		return wColorDiagFromN
	case fabric.PortEast:
		return wColorDiagFromE
	case fabric.PortSouth:
		return wColorDiagFromS
	case fabric.PortWest:
		return wColorDiagFromW
	default:
		panic(fmt.Sprintf("wave: no diagonal color for %v", p))
	}
}

// neighborSlot maps arrival information to the stencil slot order
// E, W, N, S, NE, NW, SE, SW used by stencilUpdate's caller.
const (
	slotE = iota
	slotW
	slotN
	slotS
	slotNE
	slotNW
	slotSE
	slotSW
	numSlots
)

// cardSlot returns the slot of a cardinal value arriving from port p.
func cardSlot(p fabric.Port) int {
	switch p {
	case fabric.PortEast:
		return slotE
	case fabric.PortWest:
		return slotW
	case fabric.PortNorth:
		return slotN
	case fabric.PortSouth:
		return slotS
	default:
		panic("wave: bad cardinal port")
	}
}

// diagSlot returns the slot of a relayed diagonal value arriving from port
// p (same rotation as the flux engine: from N → NW corner, etc.).
func diagSlot(p fabric.Port) int {
	switch p {
	case fabric.PortNorth:
		return slotNW
	case fabric.PortEast:
		return slotNE
	case fabric.PortSouth:
		return slotSE
	case fabric.PortWest:
		return slotSW
	default:
		panic("wave: bad diagonal port")
	}
}

type waveStream struct {
	slot   int
	isCard bool
	port   fabric.Port
	buf    []float32
	done   bool
}

// simulateFabric runs the leapfrog on the wavelet fabric.
func simulateFabric(m *Medium, opts Options) (*Result, error) {
	fab, err := fabric.New(fabric.Config{
		Width:      m.Nx,
		Height:     m.Ny,
		MemWords:   64, // wave state lives in worker locals; PE memory unused
		LinkBuffer: 64,
		RampBuffer: 128,
	})
	if err != nil {
		return nil, err
	}
	if err := fab.ForEachPE(func(pe *fabric.PE) error { return installWaveRoutes(pe) }); err != nil {
		return nil, err
	}

	a, b, c := m.coefficients(opts.Dt)
	n := m.Nx * m.Ny
	final := make([]float32, n)
	hist := make([][]float32, n) // per-PE |u| history, reduced afterwards
	srcIdx := m.Index(opts.Source.X, opts.Source.Y)

	err = fab.Run(func(pe *fabric.PE) error {
		i := m.Index(pe.X, pe.Y)
		interior := pe.X > 0 && pe.X < m.Nx-1 && pe.Y > 0 && pe.Y < m.Ny-1
		var u, uPrev float32
		localHist := make([]float32, opts.Steps)

		streams := make(map[fabric.Color]*waveStream)
		for _, p := range fabric.LinkPorts {
			if pe.HasNeighbor(p) {
				streams[wCardColor(p)] = &waveStream{slot: cardSlot(p), isCard: true, port: p}
			}
		}
		for _, p := range fabric.LinkPorts {
			// The corner behind arrival port p exists iff both p and its
			// clockwise sibling exist (N→NW needs N and W, E→NE needs E
			// and N, ...).
			if pe.HasNeighbor(p) && pe.HasNeighbor(p.ClockwiseTurn()) {
				streams[wDiagColor(p)] = &waveStream{slot: diagSlot(p), port: p}
			}
		}

		var nbr [numSlots]float32
		process := func(st *waveStream) {
			v := st.buf[0]
			st.buf = append(st.buf[:0], st.buf[1:]...) // pop the head
			if st.isCard {
				if t := st.port.ClockwiseTurn(); pe.HasNeighbor(t) {
					pe.Send(fabric.FromF32(wDiagColor(t.Opposite()), v))
				}
			}
			nbr[st.slot] = v
			st.done = true
		}

		for step := 0; step < opts.Steps; step++ {
			for _, p := range fabric.LinkPorts {
				if pe.HasNeighbor(p) {
					pe.Send(fabric.FromF32(wCardColor(p.Opposite()), u))
				}
			}
			remaining := 0
			for _, st := range streams {
				st.done = false
				if len(st.buf) >= 1 {
					process(st)
					continue
				}
				remaining++
			}
			for remaining > 0 {
				w, err := pe.Recv()
				if err != nil {
					return fmt.Errorf("step %d: %w", step, err)
				}
				st, ok := streams[w.Color]
				if !ok {
					return fmt.Errorf("wave: PE(%d,%d) unexpected color %d", pe.X, pe.Y, w.Color)
				}
				if len(st.buf) >= 2 {
					return fmt.Errorf("wave: PE(%d,%d) color %d overran two steps", pe.X, pe.Y, w.Color)
				}
				st.buf = append(st.buf, w.F32())
				if st.done {
					continue
				}
				process(st)
				remaining--
			}
			var uNext float32
			if interior {
				var src float32
				if i == srcIdx {
					src = sourceTerm(opts, step)
				}
				uNext = stencilUpdate(u, uPrev, a[i], b[i], c[i],
					nbr[slotE], nbr[slotW], nbr[slotN], nbr[slotS],
					nbr[slotNE], nbr[slotNW], nbr[slotSE], nbr[slotSW], src)
				if uNext != uNext {
					return fmt.Errorf("wave: NaN at PE(%d,%d) step %d", pe.X, pe.Y, step)
				}
			}
			uPrev, u = u, uNext
			if u < 0 {
				localHist[step] = -u
			} else {
				localHist[step] = u
			}
		}
		final[i] = u
		hist[i] = localHist
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{U: final, Steps: opts.Steps, Engine: "fabric"}
	res.MaxAbs = make([]float32, opts.Steps)
	for _, h := range hist {
		for s, v := range h {
			if v > res.MaxAbs[s] {
				res.MaxAbs[s] = v
			}
		}
	}
	return res, nil
}

// installWaveRoutes mirrors the flux engine's static routing for the wave
// colors.
func installWaveRoutes(pe *fabric.PE) error {
	for _, p := range fabric.LinkPorts {
		if !pe.HasNeighbor(p) {
			continue
		}
		if err := pe.Router().SetRoute(wCardColor(p), 0, p, fabric.PortRamp); err != nil {
			return err
		}
		if err := pe.Router().SetRoute(wCardColor(p.Opposite()), 0, fabric.PortRamp, p); err != nil {
			return err
		}
	}
	for _, ap := range fabric.LinkPorts {
		c := wDiagColor(ap)
		if pe.HasNeighbor(ap) {
			if err := pe.Router().SetRoute(c, 0, ap, fabric.PortRamp); err != nil {
				return err
			}
		}
		if out := ap.Opposite(); pe.HasNeighbor(out) {
			if err := pe.Router().SetRoute(c, 0, fabric.PortRamp, out); err != nil {
				return err
			}
		}
	}
	return nil
}
