// Package wave implements the paper's §8 second extension: the diagonal
// communication pattern "enables the implementation of other types of
// applications, such as solving the acoustic wave equation on tiled
// transversely isotropic media, that also require fetching data from
// diagonal neighbors".
//
// It solves the 2D acoustic wave equation on a TTI (tilted transversely
// isotropic) medium with a second-order leapfrog scheme:
//
//	u^{n+1} = 2uⁿ − u^{n−1} + Δt²·L(uⁿ) + Δt²·s(t)
//
// where L is the rotated anisotropic Laplacian. With fast/slow velocities
// (v_ξ, v_η) along axes tilted by θ:
//
//	L = A·∂²x + B·∂²y + C·∂²xy
//	A = v_ξ²cos²θ + v_η²sin²θ
//	B = v_ξ²sin²θ + v_η²cos²θ
//	C = 2·sinθ·cosθ·(v_ξ² − v_η²)
//
// The cross term C·∂²xy discretizes on the four diagonal neighbors — the
// nine-point stencil maps exactly onto the flux kernel's cardinal +
// clockwise-relayed diagonal exchange. One cell lives on one PE; each time
// step exchanges a single value per direction.
//
// Two engines share the identical float32 update expression: a serial host
// engine and a fabric engine on the wavelet simulator; tests assert they are
// bit-identical. A float64 reference bounds the rounding error.
package wave

import (
	"fmt"
	"math"
)

// Medium is a 2D TTI velocity model on a square-cell grid.
type Medium struct {
	Nx, Ny int
	// Dx is the cell size in meters (square cells).
	Dx float64
	// VFast and VSlow are the velocities (m/s) along the tilted fast/slow
	// axes, per cell.
	VFast, VSlow []float64
	// Theta is the tilt angle in radians, per cell.
	Theta []float64
}

// NewUniformMedium builds a constant TTI medium.
func NewUniformMedium(nx, ny int, dx, vFast, vSlow, theta float64) (*Medium, error) {
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("wave: grid %dx%d too small (need ≥3 per side)", nx, ny)
	}
	if dx <= 0 || vFast <= 0 || vSlow <= 0 {
		return nil, fmt.Errorf("wave: dx and velocities must be positive")
	}
	if vSlow > vFast {
		return nil, fmt.Errorf("wave: vSlow %g exceeds vFast %g", vSlow, vFast)
	}
	n := nx * ny
	m := &Medium{Nx: nx, Ny: ny, Dx: dx,
		VFast: make([]float64, n), VSlow: make([]float64, n), Theta: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.VFast[i] = vFast
		m.VSlow[i] = vSlow
		m.Theta[i] = theta
	}
	return m, nil
}

// Index maps (x, y) to the linear cell index.
func (m *Medium) Index(x, y int) int { return y*m.Nx + x }

// MaxVelocity returns the largest fast velocity (CFL input).
func (m *Medium) MaxVelocity() float64 {
	mx := 0.0
	for _, v := range m.VFast {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// MaxStableDt returns the leapfrog CFL limit for the nine-point stencil.
func (m *Medium) MaxStableDt() float64 {
	return m.Dx / (m.MaxVelocity() * math.Sqrt2)
}

// coefficients precomputes the float32 stencil coefficients
// (A, B, C scaled by Δt²/Δx²).
func (m *Medium) coefficients(dt float64) (a, b, c []float32) {
	n := m.Nx * m.Ny
	a = make([]float32, n)
	b = make([]float32, n)
	c = make([]float32, n)
	s := dt * dt / (m.Dx * m.Dx)
	for i := 0; i < n; i++ {
		vf2 := m.VFast[i] * m.VFast[i]
		vs2 := m.VSlow[i] * m.VSlow[i]
		cos, sin := math.Cos(m.Theta[i]), math.Sin(m.Theta[i])
		a[i] = float32(s * (vf2*cos*cos + vs2*sin*sin))
		b[i] = float32(s * (vf2*sin*sin + vs2*cos*cos))
		// ∂²xy uses the /4 divisor of the central cross difference.
		c[i] = float32(s * 2 * sin * cos * (vf2 - vs2) / 4)
	}
	return a, b, c
}

// Source is a Ricker-wavelet point source.
type Source struct {
	X, Y int
	// Freq is the peak frequency in Hz; Amp the amplitude.
	Freq, Amp float64
}

// Ricker evaluates the wavelet at time t (delayed to start near zero).
func (s Source) Ricker(t float64) float64 {
	t0 := 1.2 / s.Freq
	arg := math.Pi * s.Freq * (t - t0)
	arg *= arg
	return s.Amp * (1 - 2*arg) * math.Exp(-arg)
}

// Options configures a simulation.
type Options struct {
	Dt     float64
	Steps  int
	Source Source
	// UseFabric runs the wavelet-fabric engine; default is the serial host
	// engine (bit-identical).
	UseFabric bool
}

// Result is the final wavefield and per-step diagnostics.
type Result struct {
	U      []float32 // final wavefield, row-major
	MaxAbs []float32 // max |u| after each step (stability evidence)
	Steps  int
	Engine string
}

func (m *Medium) validate(opts Options) error {
	if len(m.VFast) != m.Nx*m.Ny || len(m.VSlow) != m.Nx*m.Ny || len(m.Theta) != m.Nx*m.Ny {
		return fmt.Errorf("wave: medium field lengths do not match %dx%d", m.Nx, m.Ny)
	}
	if opts.Dt <= 0 {
		return fmt.Errorf("wave: time step must be positive, got %g", opts.Dt)
	}
	if limit := m.MaxStableDt(); opts.Dt > limit {
		return fmt.Errorf("wave: Δt %g violates the CFL limit %g (dx/(vmax·√2))", opts.Dt, limit)
	}
	if opts.Steps <= 0 {
		return fmt.Errorf("wave: steps must be positive, got %d", opts.Steps)
	}
	s := opts.Source
	if s.X <= 0 || s.X >= m.Nx-1 || s.Y <= 0 || s.Y >= m.Ny-1 {
		return fmt.Errorf("wave: source (%d,%d) must be interior to %dx%d", s.X, s.Y, m.Nx, m.Ny)
	}
	if s.Freq <= 0 {
		return fmt.Errorf("wave: source frequency must be positive")
	}
	return nil
}

// stencilUpdate is the shared float32 update for one interior cell. Keeping
// one expression guarantees host and fabric engines agree bitwise.
func stencilUpdate(u, uPrev, a, b, c float32, e, w, n, s, ne, nw, se, sw float32, src float32) float32 {
	lap := a*(e-2*u+w) + b*(s-2*u+n) + c*((se+nw)-(ne+sw))
	return 2*u - uPrev + lap + src
}

// Simulate runs the float32 engine selected by opts.
func Simulate(m *Medium, opts Options) (*Result, error) {
	if err := m.validate(opts); err != nil {
		return nil, err
	}
	if opts.UseFabric {
		return simulateFabric(m, opts)
	}
	return simulateHost(m, opts)
}

// simulateHost is the serial engine: full-grid sweeps with the shared
// stencil expression. Boundary cells hold u = 0 (Dirichlet).
func simulateHost(m *Medium, opts Options) (*Result, error) {
	a, b, c := m.coefficients(opts.Dt)
	n := m.Nx * m.Ny
	u := make([]float32, n)
	uPrev := make([]float32, n)
	uNext := make([]float32, n)
	res := &Result{Steps: opts.Steps, Engine: "host"}
	srcIdx := m.Index(opts.Source.X, opts.Source.Y)
	for step := 0; step < opts.Steps; step++ {
		srcVal := sourceTerm(opts, step)
		for y := 1; y < m.Ny-1; y++ {
			for x := 1; x < m.Nx-1; x++ {
				i := m.Index(x, y)
				var src float32
				if i == srcIdx {
					src = srcVal
				}
				uNext[i] = stencilUpdate(u[i], uPrev[i], a[i], b[i], c[i],
					u[i+1], u[i-1], u[i-m.Nx], u[i+m.Nx],
					u[i-m.Nx+1], u[i-m.Nx-1], u[i+m.Nx+1], u[i+m.Nx-1],
					src)
			}
		}
		uPrev, u, uNext = u, uNext, uPrev
		mx, err := maxAbsChecked(u, step)
		if err != nil {
			return nil, err
		}
		res.MaxAbs = append(res.MaxAbs, mx)
	}
	res.U = u
	return res, nil
}

// sourceTerm evaluates Δt²·s(t) in float32 at a step, shared by engines.
func sourceTerm(opts Options, step int) float32 {
	t := float64(step) * opts.Dt
	return float32(opts.Dt * opts.Dt * opts.Source.Ricker(t))
}

func maxAbsChecked(u []float32, step int) (float32, error) {
	var mx float32
	for i, v := range u {
		if v != v { // NaN
			return 0, fmt.Errorf("wave: NaN at cell %d, step %d — instability", i, step)
		}
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	if mx > 1e20 {
		return 0, fmt.Errorf("wave: wavefield diverged (max |u| = %g) at step %d", mx, step)
	}
	return mx, nil
}

// SimulateReference is the float64 gold stepper for accuracy bounds.
func SimulateReference(m *Medium, opts Options) ([]float64, error) {
	if err := m.validate(opts); err != nil {
		return nil, err
	}
	n := m.Nx * m.Ny
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	s := opts.Dt * opts.Dt / (m.Dx * m.Dx)
	for i := 0; i < n; i++ {
		vf2 := m.VFast[i] * m.VFast[i]
		vs2 := m.VSlow[i] * m.VSlow[i]
		cos, sin := math.Cos(m.Theta[i]), math.Sin(m.Theta[i])
		a[i] = s * (vf2*cos*cos + vs2*sin*sin)
		b[i] = s * (vf2*sin*sin + vs2*cos*cos)
		c[i] = s * 2 * sin * cos * (vf2 - vs2) / 4
	}
	u := make([]float64, n)
	uPrev := make([]float64, n)
	uNext := make([]float64, n)
	srcIdx := m.Index(opts.Source.X, opts.Source.Y)
	for step := 0; step < opts.Steps; step++ {
		t := float64(step) * opts.Dt
		srcVal := opts.Dt * opts.Dt * opts.Source.Ricker(t)
		for y := 1; y < m.Ny-1; y++ {
			for x := 1; x < m.Nx-1; x++ {
				i := m.Index(x, y)
				lap := a[i]*(u[i+1]-2*u[i]+u[i-1]) +
					b[i]*(u[i+m.Nx]-2*u[i]+u[i-m.Nx]) +
					c[i]*((u[i+m.Nx+1]+u[i-m.Nx-1])-(u[i-m.Nx+1]+u[i+m.Nx-1]))
				uNext[i] = 2*u[i] - uPrev[i] + lap
				if i == srcIdx {
					uNext[i] += srcVal
				}
			}
		}
		uPrev, u, uNext = u, uNext, uPrev
	}
	return u, nil
}
