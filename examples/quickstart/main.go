// Quickstart: build a small storage-site mesh, run the dataflow flux
// computation on the simulated wafer-scale fabric, validate against the
// float64 reference, and project the run to CS-2 hardware scale.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/massivefv"
)

func main() {
	// A small synthetic CO2-storage geomodel (layered permeability,
	// anticline, injection-well overpressure).
	dims := massivefv.Dims{Nx: 12, Ny: 10, Nz: 8}
	m, err := massivefv.BuildMesh(dims)
	if err != nil {
		log.Fatal(err)
	}
	fl := massivefv.DefaultFluid()

	// Run 5 applications of Algorithm 1 on the goroutine-per-PE fabric.
	res, err := massivefv.RunDataflow(m, fl, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataflow run: %v on a %dx%d PE fabric, %d applications\n",
		dims, dims.Nx, dims.Ny, res.Apps)
	fmt.Printf("host time: %v (functional simulator)\n", res.Elapsed)
	fmt.Printf("per interior cell (Table 4): %s\n", res.Interior)

	// Mass conservation: no-flow boundaries make the residual sum to zero.
	var sum, mx float64
	for _, r := range res.Residual {
		sum += float64(r)
		if a := math.Abs(float64(r)); a > mx {
			mx = a
		}
	}
	fmt.Printf("Σ residual = %.3e (max |r| = %.3e) — mass conserved\n", sum, mx)

	// Cross-check a fresh mesh against the float64 reference.
	m2, err := massivefv.BuildMesh(dims)
	if err != nil {
		log.Fatal(err)
	}
	lin := fl
	lin.Model = massivefv.DensityLinear // like the dataflow kernel
	ref, err := massivefv.RunReference(m2, lin, 5)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range ref {
		if d := math.Abs(float64(res.Residual[i]) - ref[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("worst abs deviation vs float64 reference: %.3e\n", worst)

	// Project the measured counters to the paper's scale.
	rep, err := massivefv.ProjectCS2(res, 750, 994, 246, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("projected CS-2 time for 1000 applications on 750x994x246: %.4f s (paper: 0.0823 s)\n",
		rep.TotalTime)
	fmt.Printf("projected throughput: %.1f Gcell/s, %.1f TFLOPS, %.1f GFLOP/W\n",
		rep.ThroughputGcells, rep.TFlops, rep.GflopsPerWatt)
}
