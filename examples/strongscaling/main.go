// Strong scaling: sweep the sharded parallel flat engine over worker counts
// on one functional mesh and compare against the serial flat baseline. This
// is a host-simulator measurement (the repo's first multi-core execution
// path), not a hardware projection: every sweep point is verified
// bit-identical to the serial engine, and speedup beyond the machine's
// GOMAXPROCS is impossible by construction.
//
// Usage:
//
//	strongscaling                     # 128x128x4 mesh, default sweep, table to stdout
//	strongscaling -dims 256x256x4 -apps 5
//	strongscaling -json BENCH_scaling.json   # also record the JSON baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/massivefv"
)

func main() {
	var (
		dimsStr = flag.String("dims", "128x128x4", "functional mesh NxXNyXNz")
		apps    = flag.Int("apps", 3, "applications of Algorithm 1 per run")
		jsonOut = flag.String("json", "", "also write the sweep as JSON to this path")
	)
	flag.Parse()

	d, err := cliutil.ParseDims(*dimsStr)
	if err != nil {
		log.Fatal(err)
	}
	s, err := massivefv.RunStrongScaling(massivefv.ScalingConfig{Dims: d, Apps: *apps})
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline written to %s\n", *jsonOut)
	}
}
