// Unstructured meshes — the paper's §9 future work. Builds a well-centered
// radial mesh whose refinement rings give cells irregular neighbor counts,
// then runs a timed multi-application scaling sweep on the persistent
// partitioned engine: recursive coordinate bisection, compact O(owned+halo)
// per-part state, and precompiled allocation-free halo exchange over the
// shared shard-pool runtime (the layer "usually implemented with MPI", §4).
// Every partitioned run is verified bit-identical to the serial cell-based
// sweep.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/massivefv"
)

func main() {
	opts := massivefv.DefaultRadialOptions()
	opts.Rings = 48
	opts.BaseSectors = 32
	opts.RefineEvery = 12
	um, err := massivefv.NewRadialMesh(opts)
	if err != nil {
		log.Fatal(err)
	}
	degs := map[int]int{}
	for c := 0; c < um.NumCells; c++ {
		degs[um.Degree(c)]++
	}
	fmt.Printf("radial mesh: %d cells, %d faces, neighbor-count histogram %v (max %d)\n\n",
		um.NumCells, len(um.Faces), degs, um.MaxDegree())

	// Overpressured well drives radial outflow; the shared perturbation
	// schedule varies the field between applications.
	fl := massivefv.DefaultFluid()
	fl.Gravity = 0
	pres := make([]float32, um.NumCells)
	for i := range pres {
		pres[i] = 2e7
	}
	pres[um.WellIndex()] = 2.3e7
	const apps = 16

	fmt.Printf("multi-application scaling run, %d applications per sweep point:\n", apps)
	fmt.Println("parts  owned(max)  halo(max)  time [s]    Mcell/s  halo words  msgs")
	var serial []float64
	for _, levels := range []int{0, 1, 2, 3} {
		part, err := massivefv.PartitionRCB(um, levels)
		if err != nil {
			log.Fatal(err)
		}
		res, err := massivefv.RunUnstructured(um, part, fl, massivefv.UnstructuredOptions{
			UEngineOptions: massivefv.UEngineOptions{Apps: apps},
			Pressure:       pres,
		})
		if err != nil {
			log.Fatal(err)
		}
		maxOwned, maxHalo := 0, 0
		for me := 0; me < part.NumParts; me++ {
			if n := len(part.Owned[me]); n > maxOwned {
				maxOwned = n
			}
			if h := part.HaloCells(me); h > maxHalo {
				maxHalo = h
			}
		}
		fmt.Printf("%-6d %-11d %-10d %-11.4f %-8.2f %-11d %d\n",
			res.NumParts, maxOwned, maxHalo,
			res.Elapsed.Round(100*time.Microsecond).Seconds(),
			res.HostThroughput()/1e6, res.Comm.HaloWords, res.Comm.Messages)
		if levels == 0 {
			serial = res.Residual
			continue
		}
		// Bit-identity against the 1-part run (itself identical to the
		// serial cell-based sweep; tests assert that chain).
		for i := range serial {
			if res.Residual[i] != serial[i] {
				log.Fatalf("%d parts: residual[%d] diverged", res.NumParts, i)
			}
		}
	}
	fmt.Printf("\nwell residual %.3e (outflow); all part counts bit-identical\n", serial[um.WellIndex()])
	fmt.Println("\narbitrary topologies run on the same flux physics and the same shard-pool")
	fmt.Println("runtime as the structured engines; mapping them onto the 2D fabric")
	fmt.Println("efficiently is the open problem the paper leaves as future work.")
}
