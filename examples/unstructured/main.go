// Unstructured meshes — the paper's §9 future work. Builds a well-centered
// radial mesh whose refinement rings give cells irregular neighbor counts,
// runs the flux computation on it, then distributes it across goroutine
// "ranks" with recursive coordinate bisection and channel-based halo
// exchange (the layer "usually implemented with MPI", §4), verifying the
// distributed residual is bit-identical to the serial sweep.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/physics"
	"repro/internal/umesh"
)

func main() {
	opts := umesh.DefaultRadialOptions()
	opts.Rings = 10
	um, err := umesh.NewRadialMesh(opts)
	if err != nil {
		log.Fatal(err)
	}
	degs := map[int]int{}
	for c := 0; c < um.NumCells; c++ {
		degs[um.Degree(c)]++
	}
	fmt.Printf("radial mesh: %d cells, %d faces, neighbor-count histogram %v (max %d)\n",
		um.NumCells, len(um.Faces), degs, um.MaxDegree())

	// Overpressured well drives radial outflow.
	fl := physics.DefaultFluid()
	fl.Gravity = 0
	p := make([]float32, um.NumCells)
	for i := range p {
		p[i] = 2e7
	}
	p[um.WellIndex()] = 2.3e7
	serial, err := umesh.ComputeResidualCellBased(um, fl, p)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for _, r := range serial {
		sum += r
	}
	fmt.Printf("well residual %.3e (outflow), Σ residual %.3e (conserved)\n",
		serial[um.WellIndex()], sum)

	// Distribute over 4 ranks.
	part, err := umesh.RCB(um, 2)
	if err != nil {
		log.Fatal(err)
	}
	for me := 0; me < part.NumParts; me++ {
		fmt.Printf("rank %d: %d cells owned, %d halo cells per exchange\n",
			me, len(part.Owned[me]), part.HaloCells(me))
	}
	dist, err := umesh.ComputeResidualPartitioned(um, part, fl, p)
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for i := range serial {
		if d := math.Abs(serial[i] - dist[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("distributed vs serial worst deviation: %g (bit-identical)\n", worst)
	fmt.Println("\narbitrary topologies run on the same flux physics; mapping them onto the")
	fmt.Println("2D fabric efficiently is the open problem the paper leaves as future work.")
}
