// Weak scaling: reproduce the shape of the paper's Table 2 — the CS-2 run
// time stays nearly constant as the X-Y extent grows (each PE keeps the same
// column), while the GPU time grows linearly with the cell count. Functional
// runs at a reduced Nz measure the counters; the calibrated model projects
// each paper configuration.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/massivefv"
)

func main() {
	// One functional measurement supplies the per-cell counters.
	m, err := massivefv.BuildMesh(massivefv.Dims{Nx: 10, Ny: 8, Nz: 6})
	if err != nil {
		log.Fatal(err)
	}
	fl := massivefv.DefaultFluid()
	df, err := massivefv.RunDataflow(m, fl, 2)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := massivefv.BuildMesh(massivefv.Dims{Nx: 10, Ny: 8, Nz: 6})
	if err != nil {
		log.Fatal(err)
	}
	_, stats, err := massivefv.RunGPU(m2, fl, 2, massivefv.RAJA)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct{ nx, ny int }{
		{200, 200}, {400, 400}, {600, 600}, {750, 600}, {750, 800}, {750, 994},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mesh\tCells\tCS-2 [s]\tThroughput [Gcell/s]\tA100 [s]\tA100/CS-2")
	for _, c := range configs {
		cells := c.nx * c.ny * 246
		cs2, err := massivefv.ProjectCS2(df, c.nx, c.ny, 246, 1000)
		if err != nil {
			log.Fatal(err)
		}
		a100, err := massivefv.ProjectA100(stats, m.Dims.Cells(), 2, cells, 1000, massivefv.RAJA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%dx%dx246\t%d\t%.4f\t%.2f\t%.4f\t%.0fx\n",
			c.nx, c.ny, cells, cs2.TotalTime, cs2.ThroughputGcells,
			a100.TotalTime, a100.TotalTime/cs2.TotalTime)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCS-2 time is nearly flat (perfect weak scaling); the GPU grows linearly with cells.")
}
