// CO2 injection scenario: the workload class the paper's introduction
// motivates. A synthetic storage site (layered lognormal permeability under
// an anticline) receives a CO2 injector; the flux kernel is applied many
// times, as in the inner loop of an implicit simulator, and the example
// examines where the injected overpressure pushes mass, verifies
// conservation, and compares all three implementations.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/massivefv"
)

func main() {
	dims := massivefv.Dims{Nx: 36, Ny: 30, Nz: 12}
	opts := massivefv.DefaultGeoOptions()
	opts.WellOverpressure = 3e6 // a strong 30-bar injection anomaly
	m, err := massivefv.BuildMeshWith(dims, opts)
	if err != nil {
		log.Fatal(err)
	}
	fl := massivefv.DefaultFluid()
	const apps = 10

	fmt.Printf("storage site: %v cells, pore volume %.2e m3\n", dims.Cells(), m.TotalPoreVolume())

	// Flat dataflow engine: identical numerics to the fabric engine, fast
	// enough for this mesh size.
	df, err := massivefv.RunDataflowFlat(m, fl, apps)
	if err != nil {
		log.Fatal(err)
	}

	// The well column at (Nx/3, Ny/3): injection pushes mass outward, so
	// the residual there is strongly negative (outflow).
	wx, wy := dims.Nx/3, dims.Ny/3
	var wellOut float64
	for z := 0; z < dims.Nz; z++ {
		wellOut += float64(df.Residual[(z*dims.Ny+wy)*dims.Nx+wx])
	}
	fmt.Printf("well column net flux: %.4e (negative = outflow from injector)\n", wellOut)
	if wellOut >= 0 {
		log.Fatal("injection well is not expelling mass — scenario broken")
	}

	// Conservation across the whole field.
	var sum, l1 float64
	for _, r := range df.Residual {
		sum += float64(r)
		l1 += math.Abs(float64(r))
	}
	fmt.Printf("Σ residual = %.3e (L1 = %.3e) — closed system conserves mass\n", sum, l1)

	// GPU reference on the same site (exponential density).
	m2, err := massivefv.BuildMeshWith(dims, opts)
	if err != nil {
		log.Fatal(err)
	}
	gpuRes, stats, err := massivefv.RunGPU(m2, fl, apps, massivefv.RAJA)
	if err != nil {
		log.Fatal(err)
	}
	var gpuWell float64
	for z := 0; z < dims.Nz; z++ {
		gpuWell += float64(gpuRes[(z*dims.Ny+wy)*dims.Nx+wx])
	}
	fmt.Printf("GPU (RAJA) well column net flux: %.4e — same physics, %d FLOPs measured\n",
		gpuWell, stats.Flops)

	// Hardware projections for a production-size version of this site.
	cs2, err := massivefv.ProjectCS2(df, 750, 994, 246, 1000)
	if err != nil {
		log.Fatal(err)
	}
	a100, err := massivefv.ProjectA100(stats, dims.Cells(), apps, 750*994*246, 1000, massivefv.RAJA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojected to 750x994x246 x 1000 applications:\n")
	fmt.Printf("  CS-2:  %.4f s (%.0f Gcell/s)\n", cs2.TotalTime, cs2.ThroughputGcells)
	fmt.Printf("  A100:  %.2f s (RAJA)\n", a100.TotalTime)
	fmt.Printf("  speedup: %.0fx — why the paper targets dataflow hardware for CCS screening\n",
		a100.TotalTime/cs2.TotalTime)
}
