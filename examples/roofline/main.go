// Roofline example: regenerate both panels of the paper's Fig. 8 from
// measured counters — the CS-2 dual-resource roofline (local memory +
// fabric) and the A100 streaming roofline — and print the ASCII charts.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/mesh"
)

func main() {
	cfg := bench.Config{
		FuncDims:  mesh.Dims{Nx: 10, Ny: 8, Nz: 6},
		FuncApps:  2,
		UseFabric: true,
	}
	fig, err := bench.RunFig8(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("The memory dot sits on the bandwidth diagonal (bandwidth-bound);")
	fmt.Println("the fabric dot sits left of the compute peak (compute-bound);")
	fmt.Println("the A100 dot is memory-bound at ~2.1 FLOPs/Byte — the paper's Fig. 8 shape.")
}
