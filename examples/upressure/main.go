// Unstructured implicit pressure solves — the paper's §8 matrix-free Krylov
// extension running on the §9 partitioned unstructured runtime. A transient
// backward-Euler run (one Jacobi-preconditioned CG solve per step) drives an
// injector/producer pair on a refined radial mesh; the solve runs
// part-resident (one scatter in, one gather out, fused exchange-overlapped
// applications in between), and the canonical blocked reductions make the
// whole solve — residual histories, iteration counts, final field —
// bit-identical to the serial reference at every part count.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/massivefv"
)

func main() {
	opts := massivefv.DefaultRadialOptions()
	opts.Rings = 48
	opts.BaseSectors = 32
	opts.RefineEvery = 12
	um, err := massivefv.NewRadialMesh(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radial mesh: %d cells, %d faces (max degree %d)\n\n",
		um.NumCells, len(um.Faces), um.MaxDegree())

	topts := massivefv.UTransientOptions{
		Dt:    3600, // one-hour implicit steps
		Steps: 4,
		Wells: []massivefv.UWell{
			{Cell: um.WellIndex(), Rate: 2.5},
			{Cell: um.NumCells - 1, Rate: -2.5},
		},
	}

	// Serial float64 reference: the golden baseline.
	start := time.Now()
	serial, err := massivefv.RunTransientUnstructured(um, nil, massivefv.DefaultFluid(), topts)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)
	serialIts := 0
	for _, st := range serial.Steps {
		serialIts += st.Iterations
	}
	fmt.Printf("serial reference: %d steps, %d CG iterations, %v\n\n",
		topts.Steps, serialIts, serialTime.Round(100*time.Microsecond))

	fmt.Println("parts  CG its  applications  halo words  msgs   time      identical")
	for _, levels := range []int{0, 1, 2, 3} {
		part, err := massivefv.PartitionRCB(um, levels)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := massivefv.RunTransientUnstructured(um, part, massivefv.DefaultFluid(), topts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		its := 0
		for _, st := range res.Steps {
			its += st.Iterations
		}
		identical := true
		for i := range serial.Pressure {
			if res.Pressure[i] != serial.Pressure[i] {
				identical = false
				break
			}
		}
		for s := range serial.Steps {
			if res.Steps[s].Iterations != serial.Steps[s].Iterations {
				identical = false
			}
		}
		fmt.Printf("%-6d %-7d %-13d %-11d %-6d %-9v %v\n",
			part.NumParts, its, res.OperatorApplications,
			res.Comm.HaloWords, res.Comm.Messages,
			elapsed.Round(100*time.Microsecond), identical)
		if !identical {
			log.Fatalf("%d parts: solve diverged from the serial reference", part.NumParts)
		}
	}

	inj := serial.Pressure[um.WellIndex()] - 2e7
	prod := serial.Pressure[um.NumCells-1] - 2e7
	fmt.Printf("\nafter %d hours: injector %+.4f bar, producer %+.4f bar\n",
		topts.Steps, inj/1e5, prod/1e5)
	fmt.Println("\nevery CG iteration is one engine application — the \"1000 applications\"")
	fmt.Println("pattern of §3, now driven by the Krylov solver over the partitioned mesh,")
	fmt.Println("with reductions folded in canonical blocked order so part count never changes a bit.")
}
