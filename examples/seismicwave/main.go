// Seismic wave on tilted transversely isotropic media — the paper's §8
// application enabled by the diagonal exchange: the TTI cross-derivative
// needs the four diagonal neighbors every time step. The example propagates
// a Ricker wavelet through a tilted anisotropic medium on the wavelet
// fabric, verifies it against the serial engine bit-for-bit, and renders the
// anisotropic wavefront as ASCII art.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/wave"
)

func main() {
	const nx, ny = 61, 61
	med, err := wave.NewUniformMedium(nx, ny, 10, 2400, 1500, math.Pi/6)
	if err != nil {
		log.Fatal(err)
	}
	opts := wave.Options{
		Dt:     0.8 * med.MaxStableDt(),
		Steps:  90,
		Source: wave.Source{X: nx / 2, Y: ny / 2, Freq: 14, Amp: 1},
	}
	fmt.Printf("TTI medium: vFast 2400 m/s, vSlow 1500 m/s, tilt 30°, dt %.4f ms\n", opts.Dt*1e3)

	host, err := wave.Simulate(med, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.UseFabric = true
	fab, err := wave.Simulate(med, opts)
	if err != nil {
		log.Fatal(err)
	}
	for i := range host.U {
		if host.U[i] != fab.U[i] {
			log.Fatalf("fabric and host engines disagree at cell %d", i)
		}
	}
	fmt.Printf("fabric engine (%dx%d PEs) matches the serial engine bit-for-bit over %d steps\n",
		nx, ny, opts.Steps)

	// ASCII wavefront: the ellipse's long axis follows the 30° tilt.
	var peak float32
	for _, v := range fab.U {
		if v < 0 {
			v = -v
		}
		if v > peak {
			peak = v
		}
	}
	fmt.Println("\nwavefront snapshot (tilted ellipse = anisotropy via diagonal neighbors):")
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	for y := 0; y < ny; y += 2 {
		for x := 0; x < nx; x++ {
			v := fab.U[med.Index(x, y)]
			if v < 0 {
				v = -v
			}
			idx := int(float64(v) / float64(peak) * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())

	// Quantify the anisotropy: RMS arrival along the tilted fast axis vs
	// its normal.
	fast, slow := axisEnergy(med, fab.U, math.Pi/6), axisEnergy(med, fab.U, math.Pi/6+math.Pi/2)
	fmt.Printf("\nwavefront energy along fast axis %.3e vs slow axis %.3e (ratio %.2f)\n",
		fast, slow, fast/slow)
}

// axisEnergy sums |u|² along a ray from the center at angle theta.
func axisEnergy(med *wave.Medium, u []float32, theta float64) float64 {
	cx, cy := med.Nx/2, med.Ny/2
	sum := 0.0
	for r := 4; r < med.Nx/2-1; r++ {
		x := cx + int(math.Round(float64(r)*math.Cos(theta)))
		y := cy + int(math.Round(float64(r)*math.Sin(theta)))
		if x < 0 || x >= med.Nx || y < 0 || y >= med.Ny {
			break
		}
		v := float64(u[med.Index(x, y)])
		sum += v * v
	}
	return sum
}
