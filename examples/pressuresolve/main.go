// Pressure solve: the paper's §8 extension in action. The flux kernel
// becomes a matrix-free linear operator (one dataflow application per
// operator apply, the "1000 applications" pattern), and a Jacobi-
// preconditioned conjugate-gradient iteration solves one backward-Euler
// pressure step of Eq. (2) for an injector/producer pair.
package main

import (
	"fmt"
	"log"

	"repro/internal/mesh"
	"repro/internal/physics"
	"repro/internal/refflux"
	"repro/internal/solver"
)

func main() {
	dims := mesh.Dims{Nx: 16, Ny: 12, Nz: 6}
	m, err := mesh.BuildDefault(dims)
	if err != nil {
		log.Fatal(err)
	}
	fl := physics.DefaultFluid()

	// One implicit pressure step of a day, frozen mobilities.
	sys, err := solver.NewPressureSystem(m, fl, 86400, refflux.FacesAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pressure system: %v cells, frozen mobility %.3e, SPD\n",
		dims.Cells(), sys.Mobility)

	// The matrix-free operator is the dataflow flux kernel itself.
	op := solver.NewDataflowOperator(sys, fl)
	if err := op.Verify(); err != nil {
		log.Fatal(err)
	}

	// Injector at (3,3), balanced producer mirrored across the field.
	b, err := solver.WellSource(m, 3, 3, 5.0)
	if err != nil {
		log.Fatal(err)
	}
	pre, err := solver.JacobiPrecond(sys.Diagonal())
	if err != nil {
		log.Fatal(err)
	}

	x := make([]float64, op.Size())
	st, err := solver.CG(op, x, b, solver.Options{Tol: 1e-6, MaxIter: 300, Precond: pre})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CG converged in %d iterations (rel residual %.2e)\n", st.Iterations, st.Residual)
	fmt.Printf("dataflow operator applications: %d (each one = one kernel application on the wafer)\n",
		op.Applications)

	inj := x[m.Index(3, 3, dims.Nz/2)]
	prod := x[m.Index(dims.Nx-4, dims.Ny-4, dims.Nz/2)]
	fmt.Printf("pressure change: injector %+.3e, producer %+.3e (Pa per unit rate)\n", inj, prod)
	if inj <= 0 || prod >= 0 {
		log.Fatal("pressure response has the wrong sign")
	}

	// Sanity: true residual against the float64 host assembly.
	host := &solver.HostOperator{Sys: sys}
	ax := make([]float64, len(x))
	if err := host.Apply(ax, x); err != nil {
		log.Fatal(err)
	}
	var num, den float64
	for i := range ax {
		num += (ax[i] - b[i]) * (ax[i] - b[i])
		den += b[i] * b[i]
	}
	fmt.Printf("true residual vs float64 host operator: %.2e\n", num/den)
	fmt.Println("\nThe same kernel that computes fluxes serves as the Krylov operator —")
	fmt.Println("the paper's §8 path toward full implicit simulation on the wafer.")
}
