// Communication-pattern demo: visualize §5.2's exchanges on a tiny fabric.
// Every PE stamps its column with its own coordinates; after one exchange,
// the demo verifies each PE holds exactly its eight in-plane neighbors'
// stamps — cardinal columns directly, diagonal columns through the
// clockwise-turning intermediaries — and prints who relayed what. It also
// runs the paper's Fig. 6 switch-command broadcast.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/mesh"
	"repro/internal/physics"
)

func main() {
	// Part 1: the Fig. 6 eastward broadcast with runtime router switching.
	fmt.Println("-- Fig. 6: eastward broadcast via router switch commands --")
	f, err := fabric.New(fabric.Config{Width: 8, Height: 1})
	if err != nil {
		log.Fatal(err)
	}
	values := []float32{10, 11, 12, 13, 14, 15, 16, 17}
	got, err := fabric.EastwardBroadcast(f, values)
	if err != nil {
		log.Fatal(err)
	}
	for x := 1; x < len(values); x++ {
		status := "ok"
		if got[x] != values[x-1] {
			status = "WRONG"
		}
		fmt.Printf("  PE %d received %.0f (%s)\n", x, got[x], status)
	}
	tot := f.Totals()
	fmt.Printf("  switch commands applied: %d\n\n", tot.Commands)

	// Part 2: the full cardinal + diagonal exchange of the flux engine.
	// A uniform mesh with zero gravity and a pressure field that encodes
	// the source coordinates: every face flux then reveals which neighbor's
	// column arrived where.
	fmt.Println("-- §5.2: cardinal + clockwise-relayed diagonal exchange --")
	dims := mesh.Dims{Nx: 5, Ny: 5, Nz: 3}
	opts := mesh.DefaultGeoOptions()
	opts.Model = mesh.GeoUniform
	m, err := mesh.Build(dims, mesh.DefaultSpacing(), opts)
	if err != nil {
		log.Fatal(err)
	}
	// Stamp: p(x,y) = base + 100·x + 10·y (constant per column).
	for z := 0; z < dims.Nz; z++ {
		for y := 0; y < dims.Ny; y++ {
			for x := 0; x < dims.Nx; x++ {
				m.Pressure[m.Index(x, y, z)] = 2e7 + float64(100*x+10*y)
			}
		}
	}
	fl := physics.DefaultFluid()
	fl.Gravity = 0

	res, err := core.RunFabric(m, fl, core.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the flat engine (which reads neighbors directly): if
	// any relay delivered the wrong column, the residuals would differ.
	res2, err := core.RunFlat(m, fl, core.DefaultOptions(1))
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Residual {
		if res.Residual[i] != res2.Residual[i] {
			log.Fatalf("relayed data mismatch at cell %d", i)
		}
	}
	fmt.Println("  fabric exchange delivered every neighbor column correctly (bit-exact vs direct reads)")

	fmt.Println("\n  relay map for the center PE (2,2), per §5.2.2:")
	relays := []struct{ corner, inter, turn string }{
		{"NW (1,1)", "N (2,1)", "eastbound → southbound"},
		{"NE (3,1)", "E (3,2)", "southbound → westbound"},
		{"SE (3,3)", "S (2,3)", "westbound → northbound"},
		{"SW (1,3)", "W (1,2)", "northbound → eastbound"},
	}
	for _, r := range relays {
		fmt.Printf("    corner %s → intermediary %s (%s)\n", r.corner, r.inter, r.turn)
	}
	if res.FabricTotals != nil {
		fmt.Printf("\n  wavelets: %d sent from ramps, %d delivered to PEs, %d dropped\n",
			res.FabricTotals.SentFromRamp, res.FabricTotals.DeliveredToPE, res.FabricTotals.DroppedAtStop)
	}
	if res.Interior != nil {
		fmt.Printf("  interior PE fabric loads per cell: %.0f (= 8 neighbors x 2 values, Table 4's FMOV)\n",
			res.Interior.FabricLoads)
	}
}
