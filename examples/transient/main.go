// Transient implicit simulation: the full workflow the paper's flux kernel
// sits inside (§2). Ten backward-Euler pressure steps of an injector/
// producer doublet, each solved by preconditioned CG whose operator
// applications run through the dataflow kernel — hundreds of "applications
// of Algorithm 1", exactly the execution pattern the paper times.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/mesh"
	"repro/internal/physics"
	"repro/internal/refflux"
	"repro/internal/sim"
)

func main() {
	dims := mesh.Dims{Nx: 14, Ny: 12, Nz: 5}
	m, err := mesh.BuildDefault(dims)
	if err != nil {
		log.Fatal(err)
	}
	fl := physics.DefaultFluid()
	p0 := m.Pressure[m.Index(3, 3, 2)]

	opts := sim.Options{
		Dt:    6 * 3600, // 6-hour steps
		Steps: 10,
		Wells: []sim.Well{
			{X: 3, Y: 3, Rate: 4.0},   // injector, 4 kg/s
			{X: 10, Y: 8, Rate: -4.0}, // producer
		},
		Faces:               refflux.FacesAll,
		UseDataflowOperator: true,
	}
	res, err := sim.RunTransient(m, fl, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transient run: %v cells, %d implicit steps of %.0f h\n",
		dims.Cells(), opts.Steps, opts.Dt/3600)
	fmt.Println("step  CG its  rel.residual  max Δp [bar]  mass err")
	for _, st := range res.Steps {
		fmt.Printf("%4d  %6d  %12.2e  %12.4f  %8.1e\n",
			st.Step, st.Iterations, st.Residual, st.MaxDeltaP/1e5, st.MassError)
	}
	fmt.Printf("\ndataflow kernel applications across the run: %d\n", res.OperatorApplications)
	fmt.Printf("injector cell pressure: %.2f → %.2f bar\n",
		p0/1e5, res.Pressure[m.Index(3, 3, 2)]/1e5)

	// A crude pressure map of the middle layer.
	fmt.Println("\nΔp map (middle layer; + injector side, - producer side):")
	shades := []byte("--:=+*#")
	var b strings.Builder
	mref, _ := mesh.BuildDefault(dims)
	for y := 0; y < dims.Ny; y++ {
		for x := 0; x < dims.Nx; x++ {
			i := m.Index(x, y, 2)
			dp := res.Pressure[i] - mref.Pressure[i]
			idx := int((dp/2e5 + 3))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
}
