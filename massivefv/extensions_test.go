package massivefv

import (
	"math"
	"testing"

	"repro/internal/refflux"
	"repro/internal/umesh"
)

func TestFacadePressureSolve(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 8, Ny: 6, Nz: 3})
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	sys, err := NewPressureSystem(m, fl, 3600)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.Dims.Cells())
	b[m.Index(2, 2, 1)] = 1
	b[m.Index(5, 4, 1)] = -1
	x, st, err := SolveCG(sys, fl, b, SolverOptions{Tol: 1e-6, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("facade CG did not converge")
	}
	if x[m.Index(2, 2, 1)] <= x[m.Index(5, 4, 1)] {
		t.Error("pressure response has wrong polarity")
	}
}

func TestFacadeTransient(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 8, Ny: 6, Nz: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTransient(m, DefaultFluid(), TransientOptions{
		Dt:    3600,
		Steps: 2,
		Wells: []Well{{X: 2, Y: 2, Rate: 1}, {X: 6, Y: 4, Rate: -1}},
		Faces: refflux.FacesAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[1].MassError > 1e-6 {
		t.Errorf("transient run wrong: %+v", res.Steps)
	}
}

func TestFacadeWave(t *testing.T) {
	med, err := NewWaveMedium(16, 16, 10, 2000, 1400, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateWave(med, WaveOptions{
		Dt:     0.8 * med.MaxStableDt(),
		Steps:  20,
		Source: WaveSource{X: 8, Y: 8, Freq: 15, Amp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbs[len(res.MaxAbs)-1] == 0 {
		t.Error("facade wave produced an empty field")
	}
}

func TestFacadeUnstructured(t *testing.T) {
	um, err := NewRadialMesh(DefaultRadialOptions())
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	fl.Gravity = 0
	p := make([]float32, um.NumCells)
	for i := range p {
		p[i] = 2e7 + 1e5*float32(math.Sin(float64(i)))
	}
	serial, err := UnstructuredResidual(um, nil, fl, p)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionRCB(um, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UnstructuredResidual(um, part, fl, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != dist[i] {
			t.Fatalf("facade distributed residual differs at %d", i)
		}
	}
	// Structured conversion path.
	m, _ := BuildMesh(Dims{Nx: 4, Ny: 4, Nz: 2})
	u2, err := UnstructuredFromMesh(m)
	if err != nil {
		t.Fatal(err)
	}
	if u2.NumCells != 32 {
		t.Errorf("converted mesh has %d cells", u2.NumCells)
	}
}

func TestFacadeRunUnstructured(t *testing.T) {
	um, err := NewRadialMesh(DefaultRadialOptions())
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionRCB(um, 2)
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	p := make([]float32, um.NumCells)
	for i := range p {
		p[i] = 2e7 + 1e5*float32(math.Sin(float64(i)))
	}
	const apps = 3
	res, err := RunUnstructured(um, part, fl, UnstructuredOptions{
		UEngineOptions: UEngineOptions{Apps: apps, Workers: 2},
		Pressure:       p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParts != 4 || res.Apps != apps || res.NumCells != um.NumCells {
		t.Fatalf("result echo wrong: %+v", res)
	}
	if res.Comm.HaloWords == 0 || res.Comm.Messages == 0 {
		t.Error("multi-part run reports no communication")
	}
	serial, err := umesh.RunCellBasedApps(um, fl, p, apps, umesh.PerturbAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if res.Residual[i] != serial[i] {
			t.Fatalf("facade engine residual differs at %d: %g vs %g", i, res.Residual[i], serial[i])
		}
	}
	// Nil pressure selects the default uniform field.
	if _, err := RunUnstructured(um, part, fl, UnstructuredOptions{}); err != nil {
		t.Fatal(err)
	}
}
