package massivefv

import (
	"math"
	"testing"

	"repro/internal/refflux"
	"repro/internal/umesh"
)

func TestFacadePressureSolve(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 8, Ny: 6, Nz: 3})
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	sys, err := NewPressureSystem(m, fl, 3600)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.Dims.Cells())
	b[m.Index(2, 2, 1)] = 1
	b[m.Index(5, 4, 1)] = -1
	x, st, err := SolveCG(sys, fl, b, SolverOptions{Tol: 1e-6, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("facade CG did not converge")
	}
	if x[m.Index(2, 2, 1)] <= x[m.Index(5, 4, 1)] {
		t.Error("pressure response has wrong polarity")
	}
}

func TestFacadeTransient(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 8, Ny: 6, Nz: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTransient(m, DefaultFluid(), TransientOptions{
		Dt:    3600,
		Steps: 2,
		Wells: []Well{{X: 2, Y: 2, Rate: 1}, {X: 6, Y: 4, Rate: -1}},
		Faces: refflux.FacesAll,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.Steps[1].MassError > 1e-6 {
		t.Errorf("transient run wrong: %+v", res.Steps)
	}
}

func TestFacadeWave(t *testing.T) {
	med, err := NewWaveMedium(16, 16, 10, 2000, 1400, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateWave(med, WaveOptions{
		Dt:     0.8 * med.MaxStableDt(),
		Steps:  20,
		Source: WaveSource{X: 8, Y: 8, Freq: 15, Amp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbs[len(res.MaxAbs)-1] == 0 {
		t.Error("facade wave produced an empty field")
	}
}

func TestFacadeUnstructured(t *testing.T) {
	um, err := NewRadialMesh(DefaultRadialOptions())
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	fl.Gravity = 0
	p := make([]float32, um.NumCells)
	for i := range p {
		p[i] = 2e7 + 1e5*float32(math.Sin(float64(i)))
	}
	serial, err := UnstructuredResidual(um, nil, fl, p)
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionRCB(um, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UnstructuredResidual(um, part, fl, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != dist[i] {
			t.Fatalf("facade distributed residual differs at %d", i)
		}
	}
	// Structured conversion path.
	m, _ := BuildMesh(Dims{Nx: 4, Ny: 4, Nz: 2})
	u2, err := UnstructuredFromMesh(m)
	if err != nil {
		t.Fatal(err)
	}
	if u2.NumCells != 32 {
		t.Errorf("converted mesh has %d cells", u2.NumCells)
	}
}

func TestFacadeSolveUnstructured(t *testing.T) {
	// The §8-on-§9 facade: a partitioned implicit pressure step must be
	// bit-identical to the serial reference solve (same iterations, same x).
	um, err := NewRadialMesh(DefaultRadialOptions())
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	b := make([]float64, um.NumCells)
	b[um.WellIndex()] = 1.5
	b[um.NumCells-1] = -1.5
	xSerial, stSerial, err := SolveUnstructured(um, nil, fl, 3600, b, SolverOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !stSerial.Converged {
		t.Fatalf("serial solve did not converge: %+v", stSerial)
	}
	part, err := PartitionRCB(um, 2)
	if err != nil {
		t.Fatal(err)
	}
	xPart, stPart, err := SolveUnstructured(um, part, fl, 3600, b, SolverOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if stPart.Iterations != stSerial.Iterations {
		t.Errorf("partitioned solve took %d iterations, serial %d", stPart.Iterations, stSerial.Iterations)
	}
	for i := range xSerial {
		if xPart[i] != xSerial[i] {
			t.Fatalf("partitioned solution differs at %d: %g vs %g", i, xPart[i], xSerial[i])
		}
	}
	if xSerial[um.WellIndex()] <= 0 {
		t.Errorf("injection did not raise pressure: %g", xSerial[um.WellIndex()])
	}
}

func TestFacadeTransientUnstructured(t *testing.T) {
	um, err := NewRadialMesh(DefaultRadialOptions())
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionRCB(um, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := UTransientOptions{
		Dt:    3600,
		Steps: 2,
		Wells: []UWell{
			{Cell: um.WellIndex(), Rate: 1.0},
			{Cell: um.NumCells - 1, Rate: -1.0},
		},
		Workers: 2,
	}
	res, err := RunTransientUnstructured(um, part, DefaultFluid(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 || res.OperatorApplications == 0 {
		t.Fatalf("degenerate transient result: %d steps, %d applications",
			len(res.Steps), res.OperatorApplications)
	}
	if res.Pressure[um.WellIndex()] <= 2e7 {
		t.Errorf("injector pressure %g did not rise", res.Pressure[um.WellIndex()])
	}
}

func TestFacadeRunUnstructured(t *testing.T) {
	um, err := NewRadialMesh(DefaultRadialOptions())
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionRCB(um, 2)
	if err != nil {
		t.Fatal(err)
	}
	fl := DefaultFluid()
	p := make([]float32, um.NumCells)
	for i := range p {
		p[i] = 2e7 + 1e5*float32(math.Sin(float64(i)))
	}
	const apps = 3
	res, err := RunUnstructured(um, part, fl, UnstructuredOptions{
		UEngineOptions: UEngineOptions{Apps: apps, Workers: 2},
		Pressure:       p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParts != 4 || res.Apps != apps || res.NumCells != um.NumCells {
		t.Fatalf("result echo wrong: %+v", res)
	}
	if res.Comm.HaloWords == 0 || res.Comm.Messages == 0 {
		t.Error("multi-part run reports no communication")
	}
	serial, err := umesh.RunCellBasedApps(um, fl, p, apps, umesh.PerturbAmplitude)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if res.Residual[i] != serial[i] {
			t.Fatalf("facade engine residual differs at %d: %g vs %g", i, res.Residual[i], serial[i])
		}
	}
	// Nil pressure selects the default uniform field.
	if _, err := RunUnstructured(um, part, fl, UnstructuredOptions{}); err != nil {
		t.Fatal(err)
	}
}
