package massivefv

// Facade entry points for the extension subsystems: the §8 matrix-free
// Krylov path, the transient implicit simulator, the §8 TTI wave
// propagation, and the §9 unstructured-mesh support.

import (
	"repro/internal/refflux"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/umesh"
	"repro/internal/wave"
)

// Solver types (§8: matrix-free Krylov over the flux operator).
type (
	// PressureSystem is a frozen-coefficient backward-Euler pressure step.
	PressureSystem = solver.PressureSystem
	// SolverOptions configures the Krylov iteration.
	SolverOptions = solver.Options
	// SolverStats reports convergence.
	SolverStats = solver.Stats
	// PrecondKind names a rung of the preconditioner ladder; set it on
	// SolverOptions.PrecondKind to select the rung (SolveUnstructured and
	// the transient runners supply the diagonal themselves).
	PrecondKind = solver.PrecondKind
)

// The preconditioner ladder, weakest to strongest by CG iteration count.
// Jacobi works everywhere; the operator-built rungs (SSOR, Chebyshev, AMG)
// need the unstructured operators — serial or canonically RCB-partitioned —
// and reproduce the serial trajectory bit-for-bit on every part count.
const (
	PrecondJacobi    = solver.PrecondJacobi
	PrecondSSOR      = solver.PrecondSSOR
	PrecondChebyshev = solver.PrecondChebyshev
	PrecondAMG       = solver.PrecondAMG
)

// NewPressureSystem freezes one implicit step of Eq. (2).
func NewPressureSystem(m *Mesh, fl Fluid, dt float64) (*PressureSystem, error) {
	return solver.NewPressureSystem(m, fl, dt, refflux.FacesAll)
}

// NewDataflowOperator wraps the dataflow flux kernel as the system's linear
// operator (§8).
func NewDataflowOperator(sys *PressureSystem, fl Fluid) *solver.DataflowOperator {
	return solver.NewDataflowOperator(sys, fl)
}

// SolveCG runs Jacobi-preconditioned conjugate gradients on the system
// through the dataflow operator and returns the pressure update.
func SolveCG(sys *PressureSystem, fl Fluid, b []float64, opts SolverOptions) ([]float64, *SolverStats, error) {
	op := solver.NewDataflowOperator(sys, fl)
	pre, err := solver.JacobiPrecond(sys.Diagonal())
	if err != nil {
		return nil, nil, err
	}
	opts.Precond = pre
	x := make([]float64, op.Size())
	st, err := solver.CG(op, x, b, opts)
	if err != nil {
		return nil, st, err
	}
	return x, st, nil
}

// Transient simulation (the §2 workflow).
type (
	// TransientOptions configures the implicit time stepping.
	TransientOptions = sim.Options
	// TransientResult carries per-step reports and the final field.
	TransientResult = sim.Result
	// Well is a constant-rate column source/sink.
	Well = sim.Well
)

// RunTransient advances the pressure field through implicit steps.
func RunTransient(m *Mesh, fl Fluid, opts TransientOptions) (*TransientResult, error) {
	return sim.RunTransient(m, fl, opts)
}

// Wave propagation (§8's diagonal-exchange application).
type (
	// WaveMedium is a 2D TTI velocity model.
	WaveMedium = wave.Medium
	// WaveOptions configures a leapfrog run.
	WaveOptions = wave.Options
	// WaveResult is the final wavefield and stability history.
	WaveResult = wave.Result
	// WaveSource is a Ricker point source.
	WaveSource = wave.Source
)

// NewWaveMedium builds a constant tilted transversely isotropic medium.
func NewWaveMedium(nx, ny int, dx, vFast, vSlow, theta float64) (*WaveMedium, error) {
	return wave.NewUniformMedium(nx, ny, dx, vFast, vSlow, theta)
}

// SimulateWave runs the TTI leapfrog (host or fabric engine per options).
func SimulateWave(m *WaveMedium, opts WaveOptions) (*WaveResult, error) {
	return wave.Simulate(m, opts)
}

// Unstructured meshes (§9).
type (
	// UMesh is a general unstructured finite-volume mesh.
	UMesh = umesh.Mesh
	// UPartition is an RCB decomposition with halo plans.
	UPartition = umesh.Partition
	// UEngineOptions configures the persistent partitioned engine.
	UEngineOptions = umesh.EngineOptions
	// UnstructuredResult summarizes a partitioned multi-application run
	// (residual, communication counters, wall-clock).
	UnstructuredResult = umesh.PartResult
)

// UnstructuredOptions configures RunUnstructured: the engine options plus
// the initial pressure field.
type UnstructuredOptions struct {
	UEngineOptions
	// Pressure is the initial field (one value per cell); nil selects a
	// uniform 20 MPa field, which the shared perturbation schedule then
	// varies between applications.
	Pressure []float32
}

// RunUnstructured executes a multi-application batch of Algorithm 1 on the
// persistent partitioned unstructured engine (umesh.PartEngine on the shared
// internal/exec shard pool): compact O(owned+halo) per-part state,
// precompiled allocation-free halo exchange, and communication counters. The
// residual is bit-identical to the serial cell-based sweep.
func RunUnstructured(u *UMesh, part *UPartition, fl Fluid, opts UnstructuredOptions) (*UnstructuredResult, error) {
	p := opts.Pressure
	if p == nil {
		p = make([]float32, u.NumCells)
		for i := range p {
			p[i] = 2e7
		}
	}
	e, err := umesh.NewPartEngine(u, part, fl, opts.UEngineOptions)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return e.Run(p)
}

// Unstructured implicit solves (§8 on the §9 runtime).
type (
	// UPressureSystem is a frozen-coefficient backward-Euler pressure step
	// over an unstructured mesh.
	UPressureSystem = umesh.USystem
	// UWell is a constant-rate mass source/sink at one cell.
	UWell = umesh.Well
	// UTransientOptions configures the partitioned implicit time stepping.
	UTransientOptions = umesh.TransientOptions
	// UTransientResult carries per-step reports (with residual histories),
	// the final field and the solve's halo traffic.
	UTransientResult = umesh.TransientResult
)

// SolveUnstructured solves one implicit pressure step A·δp = b on the
// unstructured mesh with Jacobi-preconditioned CG. Partitioned solves run
// part-resident: the Krylov working set lives in each part's compact layout
// for the whole solve (one scatter in, one gather out) with fused
// exchange-overlapped operator applications. A nil partition selects the
// serial float64 reference operator; partitioned solves are bit-identical
// to it for every part count.
func SolveUnstructured(u *UMesh, part *UPartition, fl Fluid, dt float64, b []float64, opts SolverOptions) ([]float64, *SolverStats, error) {
	sys, err := umesh.NewUSystem(u, fl, dt, 0)
	if err != nil {
		return nil, nil, err
	}
	op, diag, closeOp, err := umesh.NewSystemOperator(u, part, fl, sys, 0)
	if err != nil {
		return nil, nil, err
	}
	defer closeOp()
	// The diagonal, not a closure: a closure would force the slice path and
	// its per-application scatter/gather.
	opts.PrecondDiag = diag
	x := make([]float64, op.Size())
	st, err := solver.CG(op, x, b, opts)
	if err != nil {
		return nil, st, err
	}
	return x, st, nil
}

// RunTransientUnstructured advances an unstructured pressure field through
// implicit backward-Euler steps on the partitioned runtime, one
// preconditioned Krylov solve per step. A nil partition runs the serial
// reference path.
func RunTransientUnstructured(u *UMesh, part *UPartition, fl Fluid, opts UTransientOptions) (*UTransientResult, error) {
	return umesh.RunTransientPartitioned(u, part, fl, opts)
}

// UnstructuredFromMesh converts a structured mesh (all ten faces).
func UnstructuredFromMesh(m *Mesh) (*UMesh, error) {
	return umesh.FromStructured(m, refflux.FacesAll)
}

// NewRadialMesh builds a well-centered refined radial mesh.
func NewRadialMesh(opts umesh.RadialOptions) (*UMesh, error) {
	return umesh.NewRadialMesh(opts)
}

// DefaultRadialOptions returns the standard near-well grid.
func DefaultRadialOptions() umesh.RadialOptions { return umesh.DefaultRadialOptions() }

// PartitionRCB decomposes an unstructured mesh into 2^levels parts.
func PartitionRCB(u *UMesh, levels int) (*UPartition, error) { return umesh.RCB(u, levels) }

// UnstructuredResidual evaluates Algorithm 1 on an unstructured mesh
// (distributed across goroutine ranks when part is non-nil).
func UnstructuredResidual(u *UMesh, part *UPartition, fl Fluid, p []float32) ([]float64, error) {
	if part == nil {
		return umesh.ComputeResidualCellBased(u, fl, p)
	}
	return umesh.ComputeResidualPartitioned(u, part, fl, p)
}

// Resident-engine serving (the fvserve daemon's library surface).
type (
	// UTransientSolver is the compile-once / solve-many form of the
	// partitioned implicit path: plan compilation happens in
	// NewTransientSolver, every Solve re-aims the resident engine at a new
	// request without recompiling.
	UTransientSolver = umesh.TransientSolver
	// ServeOptions configures a resident-engine Server.
	ServeOptions = serve.Options
	// ServeScenario selects a compiled-engine configuration (the scenario
	// cache key's preimage).
	ServeScenario = serve.Scenario
	// ServeRequest is the POST /v1/solve body.
	ServeRequest = serve.SolveRequest
	// ServeResponse is the POST /v1/solve response body.
	ServeResponse = serve.SolveResponse
	// ServeStats is the serving layer's counter snapshot.
	ServeStats = serve.StatsSnapshot
)

// NewTransientSolver compiles a resident transient solver: the engine
// fvserve keeps warm behind its scenario cache. A nil partition compiles the
// serial reference path.
func NewTransientSolver(u *UMesh, part *UPartition, fl Fluid, opts UTransientOptions) (*UTransientSolver, error) {
	return umesh.NewTransientSolver(u, part, fl, opts)
}

// NewServer builds the resident-engine serving layer: a scenario cache of
// compiled engines behind admission control and batched least-loaded
// dispatch. Mount Handler on an http.Server and Drain on shutdown.
func NewServer(opts ServeOptions) *serve.Server { return serve.New(opts) }
