// Package massivefv is the public API of the reproduction of "Massively
// Distributed Finite-Volume Flux Computation" (SC 2023): TPFA finite-volume
// flux computation for compressible single-phase Darcy flow, executed on a
// simulated wafer-scale dataflow fabric (the paper's contribution), on a
// simulated GPU through RAJA-style and CUDA-style reference kernels, and on
// a float64 host reference — plus the calibrated performance projections and
// the experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Quick start:
//
//	m, _ := massivefv.BuildMesh(massivefv.Dims{Nx: 16, Ny: 12, Nz: 8})
//	fl := massivefv.DefaultFluid()
//	res, _ := massivefv.RunDataflow(m, fl, 10)
//	fmt.Println(res.Interior) // Table 4 per-cell counts, measured
package massivefv

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/kernels"
	"repro/internal/mesh"
	"repro/internal/perfmodel"
	"repro/internal/physics"
	"repro/internal/refflux"
	"repro/internal/wse"
)

// Core geometry and physics types.
type (
	// Dims is a mesh extent (cells per dimension).
	Dims = mesh.Dims
	// Mesh is the 3D Cartesian mesh with fields and transmissibilities.
	Mesh = mesh.Mesh
	// GeoOptions parameterizes the synthetic geomodels.
	GeoOptions = mesh.GeoOptions
	// Fluid is the compressible single-phase fluid model.
	Fluid = physics.Fluid
	// Result is a dataflow engine run outcome (residual + counters).
	Result = core.Result
	// Options configures the dataflow engines.
	Options = core.Options
	// KernelStats is a GPU launch measurement.
	KernelStats = gpusim.KernelStats
	// ExperimentConfig sizes the functional experiment runs.
	ExperimentConfig = bench.Config
)

// Density models of the fluid (Eq. 5 and its linearization).
const (
	// DensityExponential is the slight-compressibility exponential (Eq. 5),
	// used by the GPU kernels and the default reference.
	DensityExponential = physics.DensityExponential
	// DensityLinear is the linearization the dataflow kernel computes with.
	DensityLinear = physics.DensityLinear
)

// BuildMesh constructs the default CCS geomodel at the given size.
func BuildMesh(d Dims) (*Mesh, error) { return mesh.BuildDefault(d) }

// BuildMeshWith constructs a mesh with explicit geomodel options.
func BuildMeshWith(d Dims, opts GeoOptions) (*Mesh, error) {
	return mesh.Build(d, mesh.DefaultSpacing(), opts)
}

// DefaultGeoOptions returns the storage-site geomodel configuration.
func DefaultGeoOptions() GeoOptions { return mesh.DefaultGeoOptions() }

// DefaultFluid returns supercritical-CO2-like fluid properties.
func DefaultFluid() Fluid { return physics.DefaultFluid() }

// DefaultOptions mirrors the paper's engine configuration.
func DefaultOptions(apps int) Options { return core.DefaultOptions(apps) }

// RunDataflow executes the paper's algorithm on the goroutine-per-PE
// wavelet-fabric simulator (the CS-2 functional twin).
func RunDataflow(m *Mesh, fl Fluid, apps int) (*Result, error) {
	return core.RunFabric(m, fl, core.DefaultOptions(apps))
}

// RunDataflowOpts is RunDataflow with explicit options (ablations etc.).
func RunDataflowOpts(m *Mesh, fl Fluid, opts Options) (*Result, error) {
	return core.RunFabric(m, fl, opts)
}

// RunDataflowFlat executes the identical schedule serially — bit-identical
// residuals, much faster for large functional meshes.
func RunDataflowFlat(m *Mesh, fl Fluid, apps int) (*Result, error) {
	return core.RunFlat(m, fl, core.DefaultOptions(apps))
}

// RunDataflowFlatOpts is RunDataflowFlat with explicit options.
func RunDataflowFlatOpts(m *Mesh, fl Fluid, opts Options) (*Result, error) {
	return core.RunFlat(m, fl, opts)
}

// RunFlatParallel executes the flat schedule on the sharded multi-core
// engine: the PE grid is decomposed into contiguous row bands and each band
// runs on one worker of a pool sized by workers (0 selects
// runtime.NumCPU()). Residuals and counters are bit-identical to
// RunDataflowFlat for every worker count.
func RunFlatParallel(m *Mesh, fl Fluid, apps, workers int) (*Result, error) {
	opts := core.DefaultOptions(apps)
	opts.Workers = workers
	return core.RunFlatParallel(m, fl, opts)
}

// RunFlatParallelOpts is RunFlatParallel with explicit options
// (Options.Workers sizes the pool).
func RunFlatParallelOpts(m *Mesh, fl Fluid, opts Options) (*Result, error) {
	return core.RunFlatParallel(m, fl, opts)
}

// GPUVariant selects a reference kernel.
type GPUVariant = perfmodel.Variant

// Reference kernel variants.
const (
	RAJA = perfmodel.VariantRAJA
	CUDA = perfmodel.VariantCUDA
)

// RunGPU executes a reference kernel on the simulated A100 and returns the
// residual and the measured launch statistics.
func RunGPU(m *Mesh, fl Fluid, apps int, v GPUVariant) ([]float32, *KernelStats, error) {
	dev := gpusim.NewDevice(gpusim.A100())
	fd, err := kernels.Upload(dev, m, fl)
	if err != nil {
		return nil, nil, err
	}
	var st *KernelStats
	if v == CUDA {
		st, err = fd.RunCUDA(apps)
	} else {
		st, err = fd.RunRAJA(apps)
	}
	if err != nil {
		return nil, nil, err
	}
	return fd.Residual(), st, nil
}

// RunReference executes the float64 gold implementation of Algorithm 1.
func RunReference(m *Mesh, fl Fluid, apps int) ([]float64, error) {
	return refflux.Run(m, fl, m.Pressure32(), apps, refflux.Options{})
}

// ProjectCS2 converts a dataflow run's measured per-cell counters into
// projected CS-2 wall-clock at the given geometry.
func ProjectCS2(r *Result, nx, ny, nz, apps int) (*perfmodel.CS2Report, error) {
	pc := r.Interior
	if pc == nil {
		return nil, errNoInterior
	}
	return perfmodel.DefaultCS2().Project(wse.CS2(), perfmodel.CS2Inputs{
		Nx: nx, Ny: ny, Nz: nz, Apps: apps,
		MemAccessesPerCell: pc.MemAccesses,
		FabricWordsPerCell: pc.FabricLoads,
		FlopsPerCell:       pc.Flops,
	})
}

// ProjectA100 converts measured kernel stats into projected A100 wall-clock.
func ProjectA100(st *KernelStats, measuredCells, measuredApps, cells, apps int, v GPUVariant) (*perfmodel.A100Report, error) {
	in := perfmodel.FromKernelStats(st, measuredCells, measuredApps, v)
	in.Cells, in.Apps = cells, apps
	return perfmodel.DefaultA100().Project(gpusim.A100(), in)
}

// Experiment entry points (the paper's tables and figures).
var (
	// RunTable1 regenerates the Table 1 comparison.
	RunTable1 = bench.RunTable1
	// RunTable2 regenerates the weak-scaling table.
	RunTable2 = bench.RunTable2
	// RunTable3 regenerates the comm/compute split.
	RunTable3 = bench.RunTable3
	// RunTable4 regenerates the instruction-count table.
	RunTable4 = bench.RunTable4
	// RunFig8 regenerates both roofline panels.
	RunFig8 = bench.RunFig8
	// RunStrongScaling sweeps the sharded flat engine over worker counts.
	RunStrongScaling = bench.RunStrongScaling
	// RunUmeshScaling sweeps the partitioned unstructured engine over RCB
	// part counts against the serial cell-based baseline.
	RunUmeshScaling = bench.RunUmeshScaling
)

// Strong-scaling experiment types (the multi-core host sweep).
type (
	// ScalingConfig sizes the strong-scaling sweep.
	ScalingConfig = bench.ScalingConfig
	// StrongScaling is the sweep outcome (renders and serializes to JSON).
	StrongScaling = bench.StrongScaling
	// UmeshScalingConfig sizes the unstructured scaling experiment.
	UmeshScalingConfig = bench.UmeshScalingConfig
	// UmeshScaling is its outcome (renders and serializes to JSON — the
	// BENCH_umesh.json baseline).
	UmeshScaling = bench.UmeshScaling
)

type interiorErr struct{}

func (interiorErr) Error() string {
	return "massivefv: mesh has no interior PE (need Nx, Ny ≥ 3) — per-cell counters unavailable"
}

var errNoInterior = interiorErr{}
