package massivefv

import (
	"math"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 6, Ny: 5, Nz: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDataflow(m, DefaultFluid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interior == nil || res.Interior.FMUL != 60 {
		t.Errorf("interior counts wrong: %+v", res.Interior)
	}
	rep, err := ProjectCS2(res, 750, 994, 246, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TotalTime-0.0823)/0.0823 > 0.005 {
		t.Errorf("projection %.4f s, want ≈0.0823", rep.TotalTime)
	}
}

func TestGPUFlow(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 8, Ny: 6, Nz: 5})
	if err != nil {
		t.Fatal(err)
	}
	resRAJA, stats, err := RunGPU(m, DefaultFluid(), 1, RAJA)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Flops == 0 {
		t.Error("no flops measured")
	}
	m2, _ := BuildMesh(Dims{Nx: 8, Ny: 6, Nz: 5})
	ref, err := RunReference(m2, DefaultFluid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	scale := 0.0
	for _, r := range ref {
		if a := math.Abs(r); a > scale {
			scale = a
		}
	}
	for i := range resRAJA {
		if math.Abs(float64(resRAJA[i])-ref[i]) > 2e-3*scale {
			t.Fatalf("GPU residual mismatch at %d", i)
		}
	}
	proj, err := ProjectA100(stats, m.Dims.Cells(), 1, 750*994*246, 1000, RAJA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proj.TotalTime-16.84)/16.84 > 0.01 {
		t.Errorf("A100 projection %.2f s, want ≈16.84", proj.TotalTime)
	}
}

func TestFlatMatchesFabricThroughFacade(t *testing.T) {
	m, _ := BuildMesh(Dims{Nx: 5, Ny: 4, Nz: 3})
	a, err := RunDataflow(m, DefaultFluid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := BuildMesh(Dims{Nx: 5, Ny: 4, Nz: 3})
	b, err := RunDataflowFlat(m2, DefaultFluid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Residual {
		if a.Residual[i] != b.Residual[i] {
			t.Fatal("facade engines disagree")
		}
	}
}

func TestProjectCS2RequiresInterior(t *testing.T) {
	m, _ := BuildMesh(Dims{Nx: 2, Ny: 2, Nz: 3})
	res, err := RunDataflowFlat(m, DefaultFluid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProjectCS2(res, 10, 10, 10, 1); err == nil {
		t.Error("projection without interior counters accepted")
	}
}

func TestExperimentEntryPoints(t *testing.T) {
	cfg := ExperimentConfig{FuncDims: Dims{Nx: 6, Ny: 5, Nz: 4}, FuncApps: 1, UseFabric: false}
	if _, err := RunTable4(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParallelFacadeBitIdentical(t *testing.T) {
	m, err := BuildMesh(Dims{Nx: 6, Ny: 6, Nz: 3})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunDataflowFlat(m, DefaultFluid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		par, err := RunFlatParallel(m, DefaultFluid(), 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Residual {
			if serial.Residual[i] != par.Residual[i] {
				t.Fatalf("workers=%d: facade parallel engine diverged at %d", workers, i)
			}
		}
		if serial.Counters != par.Counters {
			t.Errorf("workers=%d: facade parallel counters differ", workers)
		}
	}
}

func TestStrongScalingFacade(t *testing.T) {
	s, err := RunStrongScaling(ScalingConfig{Dims: Dims{Nx: 8, Ny: 8, Nz: 2}, Apps: 1, Workers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.BitIdentical || len(s.Points) != 2 {
		t.Errorf("facade sweep wrong: %+v", s)
	}
}
