package massivefv_test

import (
	"fmt"

	"repro/massivefv"
)

// ExampleSolveUnstructured solves one implicit pressure step on a refined
// radial mesh split into two RCB parts, selecting the Chebyshev rung of the
// preconditioner ladder through SolverOptions.PrecondKind. The facade
// supplies the matrix diagonal itself, so the rung runs part-resident: one
// scatter in, one gather out, every Krylov operation a fused phase on the
// partitioned runtime.
func ExampleSolveUnstructured() {
	u, err := massivefv.NewRadialMesh(massivefv.DefaultRadialOptions())
	if err != nil {
		fmt.Println("mesh:", err)
		return
	}
	part, err := massivefv.PartitionRCB(u, 1) // 1 bisection level → 2 parts
	if err != nil {
		fmt.Println("partition:", err)
		return
	}

	// A balanced injector/producer pair as the right-hand side.
	b := make([]float64, u.NumCells)
	b[0], b[u.NumCells-1] = 2, -2

	opts := massivefv.SolverOptions{PrecondKind: massivefv.PrecondChebyshev}
	x, st, err := massivefv.SolveUnstructured(u, part, massivefv.DefaultFluid(), 3600, b, opts)
	if err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Println("converged:", st.Converged)
	fmt.Println("update covers every cell:", len(x) == u.NumCells)
	// Output:
	// converged: true
	// update covers every cell: true
}
